// Wire-protocol and reactor tests: framing hardening (a peer can be
// truncated, hostile, or dead mid-frame, never crashing or hanging the
// server), the timer wheel, the event loop, and the WnwServer served over
// real loopback sockets with pipelined and interleaved requests.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "access/backend.h"
#include "net/event_loop.h"
#include "net/server.h"
#include "net/wire.h"
#include "random/rng.h"
#include "test_util.h"

namespace wnw {
namespace {

using net::DecodedFrame;
using net::Frame;
using net::Opcode;

std::vector<std::byte> EncodeOne(Opcode opcode, uint64_t id,
                                 std::span<const std::byte> payload = {}) {
  Frame frame;
  frame.opcode = opcode;
  frame.request_id = id;
  frame.payload = payload;
  std::vector<std::byte> out;
  net::EncodeFrame(frame, &out);
  return out;
}

// --- frame codec -------------------------------------------------------------

TEST(WireTest, FrameRoundTrip) {
  const std::vector<std::byte> payload = {std::byte{1}, std::byte{2},
                                          std::byte{3}};
  const std::vector<std::byte> wire =
      EncodeOne(Opcode::kFetchNeighbors, 42, payload);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + 3);

  DecodedFrame decoded;
  auto taken = net::DecodeFrame(wire, &decoded);
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(*taken, wire.size());
  EXPECT_EQ(decoded.opcode, static_cast<uint16_t>(Opcode::kFetchNeighbors));
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.status, StatusCode::kOk);
  ASSERT_EQ(decoded.payload.size(), 3u);
  EXPECT_EQ(decoded.payload[1], std::byte{2});
}

TEST(WireTest, TruncatedFramesAreIncompleteNotErrors) {
  const std::vector<std::byte> wire =
      EncodeOne(Opcode::kPing, 7, std::vector<std::byte>(10));
  // Every prefix short of the full frame decodes to "0 consumed, wait for
  // more bytes" — a slow peer is not a protocol violation.
  for (size_t len = 0; len < wire.size(); ++len) {
    DecodedFrame decoded;
    auto taken = net::DecodeFrame(
        std::span<const std::byte>(wire.data(), len), &decoded);
    ASSERT_TRUE(taken.ok()) << "len=" << len;
    EXPECT_EQ(*taken, 0u) << "len=" << len;
  }
}

TEST(WireTest, WrongMagicIsInvalidArgument) {
  std::vector<std::byte> wire = EncodeOne(Opcode::kPing, 1);
  wire[0] = std::byte{0xff};
  DecodedFrame decoded;
  auto taken = net::DecodeFrame(wire, &decoded);
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(taken.status().message().find("magic"), std::string::npos);
}

TEST(WireTest, WrongVersionIsInvalidArgument) {
  std::vector<std::byte> wire = EncodeOne(Opcode::kPing, 1);
  wire[4] = std::byte{0x7f};  // version field
  DecodedFrame decoded;
  auto taken = net::DecodeFrame(wire, &decoded);
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(taken.status().message().find("version"), std::string::npos);
}

TEST(WireTest, OversizedDeclaredPayloadIsInvalidArgument) {
  std::vector<std::byte> wire = EncodeOne(Opcode::kPing, 1);
  // Declare a payload over the cap without shipping it: a hostile length
  // must be rejected from the header alone, not buffered toward 4 GiB.
  const uint32_t huge = net::kMaxPayloadBytes + 1;
  std::memcpy(wire.data() + 20, &huge, sizeof(huge));
  DecodedFrame decoded;
  auto taken = net::DecodeFrame(wire, &decoded);
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(taken.status().message().find("payload"), std::string::npos);
}

TEST(WireTest, PayloadReaderRejectsTrailingGarbage) {
  std::vector<std::byte> payload;
  net::EncodeFetchRequest(5, &payload);
  payload.push_back(std::byte{0});  // one stray byte
  auto decoded = net::DecodeFetchRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, PayloadReaderRejectsHostileArrayCount) {
  // A node array claiming 2^31 entries backed by 4 bytes must fail cleanly
  // instead of resizing to gigabytes.
  std::vector<std::byte> payload(8);
  const uint32_t count = 1u << 31;
  std::memcpy(payload.data(), &count, sizeof(count));
  auto decoded = net::DecodeBatchRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, BatchReplyRoundTripsBilling) {
  BatchReply reply;
  reply.lists = {{1, 2, 3}, {}, {9}};
  reply.simulated_seconds = 0.125;
  reply.shards = {2, 0, 1};
  reply.BillStall(2, 0.5);
  std::vector<std::byte> payload;
  net::EncodeBatchReply(reply, &payload);
  auto decoded = net::DecodeBatchReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->lists, reply.lists);
  EXPECT_EQ(decoded->shards, reply.shards);
  EXPECT_EQ(decoded->simulated_seconds, reply.simulated_seconds);
  ASSERT_EQ(decoded->shard_stalls.size(), 3u);
  EXPECT_EQ(decoded->shard_stalls[2], 0.5);
}

TEST(WireTest, StatsReplyRoundTrips) {
  net::StatsReply stats;
  stats.num_nodes = 1000;
  stats.server_seed = 0xabc;
  stats.restriction = 2;
  stats.max_neighbors = 16;
  stats.bidirectional = 1;
  stats.shards = 4;
  stats.requests_served = 77;
  stats.connections_accepted = 3;
  stats.origin = "sharded[degree:4](snapshot)";
  std::vector<std::byte> payload;
  net::EncodeStatsReply(stats, &payload);
  auto decoded = net::DecodeStatsReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_nodes, stats.num_nodes);
  EXPECT_EQ(decoded->server_seed, stats.server_seed);
  EXPECT_EQ(decoded->restriction, stats.restriction);
  EXPECT_EQ(decoded->max_neighbors, stats.max_neighbors);
  EXPECT_EQ(decoded->shards, stats.shards);
  EXPECT_EQ(decoded->origin, stats.origin);
}

// --- timer wheel -------------------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrderAndHonorsCancel) {
  net::TimerWheel wheel;
  std::vector<int> fired;
  wheel.Add(0.0, 0.05, [&] { fired.push_back(2); });
  const uint64_t early = wheel.Add(0.0, 0.02, [&] { fired.push_back(1); });
  const uint64_t cancelled = wheel.Add(0.0, 0.03, [&] { fired.push_back(9); });
  wheel.Cancel(cancelled);
  EXPECT_EQ(wheel.pending(), 2u);

  wheel.AdvanceTo(0.01);
  EXPECT_TRUE(fired.empty());
  wheel.AdvanceTo(0.06);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.pending(), 0u);
  wheel.Cancel(early);  // already fired: no-op, no crash
}

TEST(TimerWheelTest, CancelOfFiredOrUnknownIdIsATrueNoOp) {
  // Cancelling a fired, double-cancelled, or unknown handle must not eat
  // into pending() (which would let NextDelay report -1 with real timers
  // still resident) nor leave a ghost entry in the cancelled set.
  net::TimerWheel wheel;
  int fired = 0;
  const uint64_t early = wheel.Add(0.0, 0.02, [&] { ++fired; });
  const uint64_t cancelled = wheel.Add(0.0, 0.03, [&] { fired += 100; });
  wheel.Add(0.0, 0.5, [&] { ++fired; });
  wheel.Cancel(cancelled);
  wheel.AdvanceTo(0.05);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 1u);

  wheel.Cancel(early);      // already fired
  wheel.Cancel(cancelled);  // double cancel
  wheel.Cancel(987654);     // never issued
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_GT(wheel.NextDelay(0.05), 0.0);  // the live timer is still seen

  wheel.AdvanceTo(1.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, NextDelayTracksEarliestPending) {
  net::TimerWheel wheel;
  EXPECT_EQ(wheel.NextDelay(0.0), -1.0);
  wheel.Add(0.0, 0.5, [] {});
  const double delay = wheel.NextDelay(0.1);
  EXPECT_GT(delay, 0.0);
  EXPECT_LE(delay, 0.5);
  // A due timer yields a zero (not negative) delay.
  EXPECT_EQ(wheel.NextDelay(10.0), 0.0);
}

TEST(TimerWheelTest, WrapsAroundTheWheel) {
  // Deadlines more than kSlots ticks out must not fire a lap early.
  net::TimerWheel wheel;
  int fired = 0;
  const double far = net::TimerWheel::kTickSeconds *
                     (net::TimerWheel::kSlots + 10);
  wheel.Add(0.0, far, [&] { ++fired; });
  wheel.AdvanceTo(net::TimerWheel::kTickSeconds * net::TimerWheel::kSlots);
  EXPECT_EQ(fired, 0);
  wheel.AdvanceTo(far + 0.02);
  EXPECT_EQ(fired, 1);
}

// --- event loop --------------------------------------------------------------

TEST(EventLoopTest, PostRunsOnLoopThreadAndTimersFire) {
  auto loop_or = net::EventLoop::Create();
  ASSERT_TRUE(loop_or.ok());
  net::EventLoop& loop = **loop_or;

  std::atomic<bool> posted{false};
  std::atomic<bool> timed{false};
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] {
    EXPECT_TRUE(loop.in_loop_thread());
    posted = true;
    loop.AddTimer(0.01, [&] {
      timed = true;
      loop.Stop();
    });
  });
  runner.join();
  EXPECT_TRUE(posted);
  EXPECT_TRUE(timed);
}

// --- server over real sockets ------------------------------------------------

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)), 0)
      << std::strerror(errno);
  const timeval timeout{5, 0};  // tests must never hang on a dead server
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

void SendAll(int fd, std::span<const std::byte> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
}

// Reads frames until `count` have been decoded (owned payload copies).
struct OwnedFrame {
  uint16_t opcode = 0;
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  std::vector<std::byte> payload;
};

std::vector<OwnedFrame> ReadFrames(int fd, size_t count) {
  std::vector<OwnedFrame> frames;
  std::vector<std::byte> in;
  while (frames.size() < count) {
    DecodedFrame frame;
    auto taken = net::DecodeFrame(in, &frame);
    EXPECT_TRUE(taken.ok()) << taken.status().ToString();
    if (!taken.ok()) return frames;
    if (*taken > 0) {
      frames.push_back(OwnedFrame{
          frame.opcode, frame.request_id, frame.status,
          std::vector<std::byte>(frame.payload.begin(), frame.payload.end())});
      in.erase(in.begin(), in.begin() + static_cast<ptrdiff_t>(*taken));
      continue;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_GT(n, 0) << "server closed or timed out";
    if (n <= 0) return frames;
    const std::byte* bytes = reinterpret_cast<const std::byte*>(buf);
    in.insert(in.end(), bytes, bytes + n);
  }
  return frames;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(AccessOptions options = {}) {
    graph_ = testing::MakeTestBA(60, 3, 11);
    backend_ = std::make_shared<InMemoryBackend>(&graph_, options);
    net::ServerOptions server_options;
    server_options.threads = 2;
    auto server = net::WnwServer::Start(backend_, server_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  Graph graph_;
  std::shared_ptr<InMemoryBackend> backend_;
  std::unique_ptr<net::WnwServer> server_;
};

TEST_F(ServerTest, PingStatsAndFetchRoundTrip) {
  StartServer();
  const int fd = ConnectTo(server_->port());

  SendAll(fd, EncodeOne(Opcode::kPing, 1));
  std::vector<std::byte> fetch;
  net::EncodeFetchRequest(3, &fetch);
  SendAll(fd, EncodeOne(Opcode::kFetchNeighbors, 2, fetch));
  SendAll(fd, EncodeOne(Opcode::kStats, 3));

  const auto frames = ReadFrames(fd, 3);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_TRUE(frames[0].payload.empty());

  EXPECT_EQ(frames[1].request_id, 2u);
  auto neighbors = net::DecodeNeighborsReply(frames[1].payload);
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ(neighbors->neighbors, testing::ToVec(graph_.Neighbors(3)));

  auto stats = net::DecodeStatsReply(frames[2].payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_nodes, graph_.num_nodes());
  EXPECT_EQ(stats->origin, "memory");
  ::close(fd);
}

TEST_F(ServerTest, PipelinedRequestsInterleaveAcrossOpcodes) {
  StartServer();
  const int fd = ConnectTo(server_->port());

  // Ship 20 requests back to back before reading a byte: fetches, pings,
  // and a batch, with distinct ids. Responses arrive in order on one
  // connection; the ids prove which answer belongs to which question.
  std::vector<std::byte> wire;
  for (uint64_t id = 1; id <= 20; ++id) {
    if (id % 5 == 0) {
      net::Frame frame;
      frame.opcode = Opcode::kPing;
      frame.request_id = id;
      net::EncodeFrame(frame, &wire);
      continue;
    }
    std::vector<std::byte> payload;
    net::EncodeFetchRequest(static_cast<NodeId>(id % graph_.num_nodes()),
                            &payload);
    net::Frame frame;
    frame.opcode = Opcode::kFetchNeighbors;
    frame.request_id = id;
    frame.payload = payload;
    net::EncodeFrame(frame, &wire);
  }
  SendAll(fd, wire);

  const auto frames = ReadFrames(fd, 20);
  ASSERT_EQ(frames.size(), 20u);
  for (uint64_t id = 1; id <= 20; ++id) {
    const OwnedFrame& frame = frames[id - 1];
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.status, StatusCode::kOk);
    if (id % 5 != 0) {
      auto reply = net::DecodeNeighborsReply(frame.payload);
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply->neighbors,
                testing::ToVec(graph_.Neighbors(
                    static_cast<NodeId>(id % graph_.num_nodes()))));
    }
  }
  ::close(fd);
}

TEST_F(ServerTest, BatchMatchesBackend) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  const std::vector<NodeId> nodes = {5, 0, 17, 5};
  std::vector<std::byte> payload;
  net::EncodeBatchRequest(nodes, &payload);
  SendAll(fd, EncodeOne(Opcode::kFetchBatch, 9, payload));
  const auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  auto reply = net::DecodeBatchReply(frames[0].payload);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->lists.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(reply->lists[i], testing::ToVec(graph_.Neighbors(nodes[i])));
  }
  ::close(fd);
}

TEST_F(ServerTest, BackendErrorsTravelAsStatusFrames) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  std::vector<std::byte> payload;
  net::EncodeFetchRequest(static_cast<NodeId>(graph_.num_nodes() + 5),
                          &payload);
  SendAll(fd, EncodeOne(Opcode::kFetchNeighbors, 4, payload));
  const auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, StatusCode::kOutOfRange);
  EXPECT_FALSE(frames[0].payload.empty());  // the status message rides along
  ::close(fd);
}

TEST_F(ServerTest, UnknownOpcodeGetsErrorFrameNotDisconnect) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  SendAll(fd, EncodeOne(static_cast<Opcode>(99), 6));
  const auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, StatusCode::kInvalidArgument);
  // The connection survives a semantic error: a ping still answers.
  SendAll(fd, EncodeOne(Opcode::kPing, 7));
  const auto after = ReadFrames(fd, 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].request_id, 7u);
  ::close(fd);
}

TEST_F(ServerTest, FramingViolationClosesConnection) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  std::vector<std::byte> garbage(net::kFrameHeaderBytes, std::byte{0xee});
  SendAll(fd, garbage);
  // The server must close; recv sees EOF, not a hang.
  char buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0);
  ::close(fd);

  // And the violation is counted.
  for (int i = 0; i < 100 && server_->counters().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->counters().protocol_errors, 1u);
}

TEST_F(ServerTest, MidFrameCloseIsHarmless) {
  StartServer();
  // A client that dies after half a header must not wedge or crash the
  // reactor — the next client is served normally.
  {
    const int fd = ConnectTo(server_->port());
    const std::vector<std::byte> half =
        EncodeOne(Opcode::kPing, 1);  // encode, then send only a prefix
    SendAll(fd, std::span<const std::byte>(half.data(), 9));
    ::close(fd);
  }
  const int fd = ConnectTo(server_->port());
  SendAll(fd, EncodeOne(Opcode::kPing, 2));
  const auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].request_id, 2u);
  EXPECT_EQ(server_->counters().protocol_errors, 0u);
  ::close(fd);
}

TEST_F(ServerTest, ShutdownDrainsAndCounts) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  SendAll(fd, EncodeOne(Opcode::kPing, 1));
  ASSERT_EQ(ReadFrames(fd, 1).size(), 1u);
  server_->Shutdown();
  // After shutdown the connection is closed...
  char buf[64];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
  // ...and new connections are refused.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<uint16_t>(server_->port()));
  inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr);
  EXPECT_NE(::connect(probe, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            0);
  ::close(probe);
  const auto counters = server_->counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.requests_served, 1u);
  server_->Shutdown();  // idempotent
}

TEST(ServerStartFailureTest, FailedStartReturnsStatusAndDestructsCleanly) {
  // When Start() fails before the reactor threads launch, the error must
  // surface as a clean Status and destroying the half-built server must not
  // touch loops that never existed.
  Graph graph = testing::MakeTestBA(20, 3, 7);
  auto backend = std::make_shared<InMemoryBackend>(&graph, AccessOptions{});

  net::ServerOptions bad_addr;
  bad_addr.bind_addr = "not-an-address";
  auto server = net::WnwServer::Start(backend, bad_addr);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);

  // Occupy a loopback port, then ask the server to bind it: EADDRINUSE.
  const int holder = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(holder, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(holder, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(holder, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  net::ServerOptions busy;
  busy.port = ntohs(addr.sin_port);
  auto in_use = net::WnwServer::Start(backend, busy);
  ASSERT_FALSE(in_use.ok());
  EXPECT_EQ(in_use.status().code(), StatusCode::kIOError);
  ::close(holder);
}

TEST_F(ServerTest, BackpressurePausesAndResumesUnderPipelinedFlood) {
  StartServer();
  const int fd = ConnectTo(server_->port());
  // Pipeline enough FetchBatch requests that the replies (~25 MB in total)
  // overflow the server's 16 MiB output high-water mark while the client
  // reads nothing: the server must pause reading instead of buffering
  // without bound, then resume and answer every request as the client
  // drains its responses.
  constexpr uint64_t kRequests = 120;
  std::vector<NodeId> nodes(4096);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<NodeId>(i % graph_.num_nodes());
  }
  std::vector<std::byte> payload;
  net::EncodeBatchRequest(nodes, &payload);
  std::vector<std::byte> wire;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    net::Frame frame;
    frame.opcode = Opcode::kFetchBatch;
    frame.request_id = id;
    frame.payload = payload;
    net::EncodeFrame(frame, &wire);
  }
  // The send must overlap the reads: once the server pauses reading, a
  // blocking send from this thread would deadlock against our own
  // un-drained replies.
  std::thread sender([&] { SendAll(fd, wire); });
  const auto frames = ReadFrames(fd, kRequests);
  sender.join();
  ASSERT_EQ(frames.size(), kRequests);
  for (uint64_t id = 1; id <= kRequests; ++id) {
    EXPECT_EQ(frames[id - 1].request_id, id);
    EXPECT_EQ(frames[id - 1].status, StatusCode::kOk);
  }
  ::close(fd);
}

// --- codec property/fuzz sweep -----------------------------------------------
//
// Deterministic (seeded Rng) property tests: whatever bytes a peer sends —
// truncated frames, flipped bits, hostile length/count fields, plain random
// garbage — every decoder must come back with a Status or a value, never a
// crash, hang, or out-of-bounds read (ASan/UBSan in CI make "never" mean
// something). And every VALID frame must round-trip losslessly.

std::vector<std::byte> RandomPayload(Rng& rng, size_t max_len) {
  std::vector<std::byte> bytes(rng.NextBounded(max_len + 1));
  for (std::byte& b : bytes) {
    b = static_cast<std::byte>(rng.NextBounded(256));
  }
  return bytes;
}

TEST(WireFuzz, RandomValidFramesRoundTripLosslessly) {
  Rng rng(0xF1Au);
  for (int trial = 0; trial < 200; ++trial) {
    Frame frame;
    frame.opcode = static_cast<Opcode>(1 + rng.NextBounded(4));
    frame.request_id = rng.Next();
    frame.status = static_cast<StatusCode>(rng.NextBounded(10));
    const std::vector<std::byte> payload = RandomPayload(rng, 2048);
    frame.payload = payload;

    std::vector<std::byte> wire;
    net::EncodeFrame(frame, &wire);
    DecodedFrame decoded;
    auto taken = net::DecodeFrame(wire, &decoded);
    ASSERT_TRUE(taken.ok()) << taken.status().ToString();
    ASSERT_EQ(*taken, wire.size());
    EXPECT_EQ(decoded.opcode, static_cast<uint16_t>(frame.opcode));
    EXPECT_EQ(decoded.request_id, frame.request_id);
    EXPECT_EQ(decoded.status, frame.status);
    ASSERT_EQ(decoded.payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           decoded.payload.begin()));
  }
}

TEST(WireFuzz, PipelinedRandomFramesDecodeInOrder) {
  Rng rng(0xBEEFu);
  std::vector<std::byte> wire;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 32; ++i) {
    Frame frame;
    frame.opcode = Opcode::kFetchNeighbors;
    frame.request_id = rng.Next();
    const std::vector<std::byte> payload = RandomPayload(rng, 128);
    frame.payload = payload;
    net::EncodeFrame(frame, &wire);
    ids.push_back(frame.request_id);
  }
  size_t consumed = 0;
  for (uint64_t id : ids) {
    DecodedFrame decoded;
    auto taken = net::DecodeFrame(
        std::span<const std::byte>(wire).subspan(consumed), &decoded);
    ASSERT_TRUE(taken.ok());
    ASSERT_GT(*taken, 0u);
    EXPECT_EQ(decoded.request_id, id);
    consumed += *taken;
  }
  EXPECT_EQ(consumed, wire.size());
}

TEST(WireFuzz, EveryTruncationIsIncompleteOrPoisonNeverACrash) {
  Rng rng(0x7A7Au);
  Frame frame;
  frame.opcode = Opcode::kFetchBatch;
  frame.request_id = 0x1122334455667788ull;
  const std::vector<std::byte> payload = RandomPayload(rng, 200);
  frame.payload = payload;
  std::vector<std::byte> wire;
  net::EncodeFrame(frame, &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    DecodedFrame decoded;
    auto taken = net::DecodeFrame(
        std::span<const std::byte>(wire).first(len), &decoded);
    // A prefix of a valid frame is either "incomplete, wait for more" or —
    // never — an error: no prefix can look malformed.
    ASSERT_TRUE(taken.ok()) << "prefix of " << len << " bytes poisoned: "
                            << taken.status().ToString();
    EXPECT_EQ(*taken, 0u) << "prefix of " << len << " bytes consumed";
  }
}

TEST(WireFuzz, RandomByteFlipsNeverCrashTheFrameDecoder) {
  Rng rng(0xC0DEu);
  for (int trial = 0; trial < 500; ++trial) {
    Frame frame;
    frame.opcode = Opcode::kStats;
    frame.request_id = rng.Next();
    const std::vector<std::byte> payload = RandomPayload(rng, 64);
    frame.payload = payload;
    std::vector<std::byte> wire;
    net::EncodeFrame(frame, &wire);

    const size_t pos = rng.NextBounded(wire.size());
    wire[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));

    DecodedFrame decoded;
    auto taken = net::DecodeFrame(wire, &decoded);
    if (taken.ok()) {
      // A flip in the payload (or a shrunk length) can still parse; it must
      // never claim more bytes than the buffer holds.
      EXPECT_LE(*taken, wire.size());
    } else {
      EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(WireFuzz, RandomGarbageThroughEveryPayloadCodecReturnsStatus) {
  Rng rng(0xD15Cu);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::vector<std::byte> garbage = RandomPayload(rng, 96);
    // Each decoder either parses or reports InvalidArgument; under
    // ASan/UBSan this sweep also proves no out-of-bounds reads.
    (void)net::DecodeFetchRequest(garbage);
    (void)net::DecodeNeighborsReply(garbage);
    (void)net::DecodeBatchRequest(garbage);
    (void)net::DecodeBatchReply(garbage);
    (void)net::DecodeStatsReply(garbage);

    DecodedFrame decoded;
    (void)net::DecodeFrame(garbage, &decoded);
  }
}

TEST(WireFuzz, HostileArrayCountsAreRejectedNotAllocated) {
  // A node array claims 2^32-1 entries but carries 4 bytes: the reader must
  // bounds-check the count against the remaining payload, not trust it.
  std::vector<std::byte> payload;
  net::PayloadWriter writer(&payload);
  writer.PutU32(0xFFFFFFFFu);  // count
  writer.PutU32(7u);           // one lonely entry
  auto batch_request = net::DecodeBatchRequest(payload);
  ASSERT_FALSE(batch_request.ok());
  EXPECT_EQ(batch_request.status().code(), StatusCode::kInvalidArgument);

  // The same hostile count inside a neighbors reply (after its fixed
  // shard/simulated/serial prefix).
  std::vector<std::byte> neighbors_payload;
  net::PayloadWriter neighbors_writer(&neighbors_payload);
  neighbors_writer.PutU32(0);      // shard
  neighbors_writer.PutDouble(0.0);  // simulated
  neighbors_writer.PutDouble(0.0);  // serial
  neighbors_writer.PutU32(0xFFFFFFF0u);  // count with no bytes behind it
  auto neighbors = net::DecodeNeighborsReply(neighbors_payload);
  ASSERT_FALSE(neighbors.ok());
  EXPECT_EQ(neighbors.status().code(), StatusCode::kInvalidArgument);

  // A hostile string length in the stats reply.
  std::vector<std::byte> stats_payload;
  net::PayloadWriter stats_writer(&stats_payload);
  stats_writer.PutU64(100);  // num_nodes
  stats_writer.PutU64(1);    // server_seed
  stats_writer.PutU32(0);    // restriction
  stats_writer.PutU32(0);    // max_neighbors
  stats_writer.PutU32(0);    // bidirectional
  stats_writer.PutU32(0);    // shards
  stats_writer.PutU64(0);    // requests_served
  stats_writer.PutU64(0);    // connections_accepted
  stats_writer.PutU32(0xFFFFFF00u);  // origin-string length, no bytes
  auto stats = net::DecodeStatsReply(stats_payload);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFuzz, TrailingGarbageAfterAValidPayloadIsRejected) {
  std::vector<std::byte> payload;
  net::EncodeFetchRequest(42, &payload);
  payload.push_back(std::byte{0xAB});
  auto decoded = net::DecodeFetchRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFuzz, RandomValidBatchRepliesRoundTrip) {
  Rng rng(0x5EEDu);
  for (int trial = 0; trial < 100; ++trial) {
    BatchReply reply;
    const size_t lists = rng.NextBounded(8);
    for (size_t i = 0; i < lists; ++i) {
      std::vector<NodeId> list(rng.NextBounded(16));
      for (NodeId& u : list) u = static_cast<NodeId>(rng.NextBounded(1000));
      reply.shards.push_back(static_cast<int32_t>(rng.NextBounded(4)));
      reply.lists.push_back(std::move(list));
      if (rng.NextBounded(2) == 0) {
        reply.BillStall(reply.shards.back(), rng.NextDouble());
      }
    }
    reply.simulated_seconds = rng.NextDouble();

    std::vector<std::byte> payload;
    net::EncodeBatchReply(reply, &payload);
    auto decoded = net::DecodeBatchReply(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->lists, reply.lists);
    EXPECT_EQ(decoded->shards, reply.shards);
    EXPECT_EQ(decoded->simulated_seconds, reply.simulated_seconds);
    ASSERT_EQ(decoded->shard_stalls.size(), reply.shard_stalls.size());
    for (size_t i = 0; i < reply.shard_stalls.size(); ++i) {
      EXPECT_EQ(decoded->shard_stalls[i], reply.shard_stalls[i]);
    }
  }
}

}  // namespace
}  // namespace wnw
