#include <gtest/gtest.h>

#include <cmath>

#include "mcmc/convergence.h"
#include "random/rng.h"

namespace wnw {
namespace {

TEST(GewekeTest, InfiniteUntilMinSamples) {
  GewekeOptions opts;
  opts.min_samples = 100;
  GewekeMonitor monitor(opts);
  for (int i = 0; i < 99; ++i) monitor.Add(1.0);
  EXPECT_TRUE(std::isinf(monitor.ZScore()));
  EXPECT_FALSE(monitor.Converged());
}

TEST(GewekeTest, IidChainConverges) {
  GewekeMonitor monitor;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) monitor.Add(rng.NextGaussian());
  EXPECT_LT(monitor.ZScore(), 2.5);  // z is ~N(0,1) for an iid chain
}

TEST(GewekeTest, TrendingChainDoesNotConverge) {
  GewekeMonitor monitor;
  for (int i = 0; i < 2000; ++i) monitor.Add(static_cast<double>(i));
  EXPECT_GT(monitor.ZScore(), 10.0);
  EXPECT_FALSE(monitor.Converged());
}

TEST(GewekeTest, ConstantChainIsConverged) {
  GewekeMonitor monitor;
  for (int i = 0; i < 500; ++i) monitor.Add(3.0);
  EXPECT_DOUBLE_EQ(monitor.ZScore(), 0.0);
  EXPECT_TRUE(monitor.Converged());
}

TEST(GewekeTest, LevelShiftDetected) {
  // First half at level 0, second at level 5: windows disagree.
  GewekeMonitor monitor;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) monitor.Add(rng.NextGaussian());
  for (int i = 0; i < 1000; ++i) monitor.Add(5.0 + rng.NextGaussian());
  EXPECT_GT(monitor.ZScore(), 5.0);
}

TEST(GewekeTest, BurnedInTailConverges) {
  // A chain whose early transient is tiny relative to the stationary tail:
  // once swamped, the z-score settles. (A *long* transient keeps inflating
  // window A's mean — Geweke is deliberately sensitive to that, see
  // LevelShiftDetected.)
  GewekeMonitor monitor;
  Rng rng(7);
  for (int i = 0; i < 5; ++i) monitor.Add(10.0 - 2.0 * i);  // short transient
  for (int i = 0; i < 20000; ++i) monitor.Add(rng.NextGaussian());
  EXPECT_LT(monitor.ZScore(), 3.0);
}

TEST(GewekeTest, LongTransientInflatesZ) {
  // Contrast case for BurnedInTailConverges: the same tail with a heavy
  // transient in window A keeps the z-score high.
  GewekeMonitor clean, dirty;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) dirty.Add(25.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextGaussian();
    clean.Add(x);
    dirty.Add(x);
  }
  EXPECT_GT(dirty.ZScore(), clean.ZScore());
}

TEST(GewekeTest, ResetClearsChain) {
  GewekeMonitor monitor;
  for (int i = 0; i < 500; ++i) monitor.Add(1.0);
  monitor.Reset();
  EXPECT_EQ(monitor.size(), 0u);
  EXPECT_TRUE(std::isinf(monitor.ZScore()));
}

TEST(GewekeTest, ThresholdControlsVerdict) {
  GewekeOptions strict;
  strict.threshold = 1e-9;
  GewekeMonitor monitor(strict);
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) monitor.Add(rng.NextGaussian());
  // An iid chain has |z| > 0 almost surely, so an absurdly strict threshold
  // refuses convergence even though the chain is fine.
  EXPECT_FALSE(monitor.Converged());
}

TEST(GewekeTest, WindowFractionsValidated) {
  GewekeOptions bad;
  bad.first_frac = 0.6;
  bad.last_frac = 0.6;  // overlap: 0.6 + 0.6 > 1
  EXPECT_DEATH(GewekeMonitor{bad}, "check failed");
}

}  // namespace
}  // namespace wnw
