#include <gtest/gtest.h>

#include <memory>

#include "core/samplers.h"
#include "estimation/empirical.h"
#include "estimation/metrics.h"
#include "mcmc/distribution.h"
#include "test_util.h"

namespace wnw {
namespace {

TEST(BurnInSamplerTest, DrawsValidNodes) {
  const Graph g = testing::MakeTestBA(60, 3);
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  BurnInSampler::Options opts;
  BurnInSampler sampler(&access, &srw, 0, opts, 1);
  for (int i = 0; i < 20; ++i) {
    const auto s = sampler.Draw();
    ASSERT_TRUE(s.ok());
    EXPECT_LT(s.value(), g.num_nodes());
  }
  EXPECT_GT(sampler.last_burn_in(), 0);
  EXPECT_GT(sampler.average_burn_in(), 0.0);
  EXPECT_EQ(sampler.name(), "SRW+Geweke");
}

TEST(BurnInSamplerTest, RespectsMaxSteps) {
  // An unreachable threshold on a degree-varying graph: the walk gives up
  // at the cap. (On degree-regular graphs Geweke's observable is constant
  // and the monitor legitimately converges instantly instead.)
  const Graph g = testing::MakeTestBA(60, 3);
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  BurnInSampler::Options opts;
  opts.geweke.threshold = 1e-12;
  opts.max_steps = 500;
  BurnInSampler sampler(&access, &srw, 0, opts, 2);
  ASSERT_TRUE(sampler.Draw().ok());
  EXPECT_EQ(sampler.last_burn_in(), 500);
}

TEST(BurnInSamplerTest, ConvergedChainsStopEarly) {
  const Graph g = MakeComplete(20).value();  // mixes in one step
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  BurnInSampler::Options opts;
  opts.min_steps = 60;
  opts.max_steps = 100000;
  BurnInSampler sampler(&access, &srw, 0, opts, 3);
  ASSERT_TRUE(sampler.Draw().ok());
  EXPECT_LT(sampler.last_burn_in(), 1000);
}

TEST(BurnInSamplerTest, SamplesApproachStationary) {
  const Graph g = testing::MakeTestBA(30, 3);
  SimpleRandomWalk srw;
  const auto pi = StationaryDistribution(g, srw);
  AccessInterface access(&g);
  BurnInSampler::Options opts;
  opts.min_steps = 100;
  BurnInSampler sampler(&access, &srw, 0, opts, 4);
  EmpiricalDistribution dist(g.num_nodes());
  for (int i = 0; i < 4000; ++i) {
    dist.Add(sampler.Draw().value());
  }
  EXPECT_LT(TotalVariationDistance(dist.Pmf(), pi), 0.08);
}

TEST(BurnInSamplerTest, TargetWeightMatchesDesign) {
  const Graph g = testing::MakeHouseGraph();
  SimpleRandomWalk srw;
  MetropolisHastingsWalk mhrw;
  AccessInterface access(&g);
  BurnInSampler s1(&access, &srw, 0, {}, 5);
  BurnInSampler s2(&access, &mhrw, 0, {}, 6);
  EXPECT_DOUBLE_EQ(s1.TargetWeight(0), 3.0);  // degree
  EXPECT_DOUBLE_EQ(s2.TargetWeight(0), 1.0);  // uniform
}

TEST(OneLongRunTest, BurnsInOnceThenStreams) {
  const Graph g = testing::MakeTestBA(60, 3);
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  OneLongRunSampler::Options opts;
  OneLongRunSampler sampler(&access, &srw, 0, opts, 7);
  EXPECT_FALSE(sampler.burned_in());
  ASSERT_TRUE(sampler.Draw().ok());
  EXPECT_TRUE(sampler.burned_in());
  const uint64_t cost_after_burn_in = access.query_cost();
  // Subsequent draws are single steps: cheap.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(sampler.Draw().ok());
  const uint64_t marginal = access.query_cost() - cost_after_burn_in;
  EXPECT_LE(marginal, 110u);
}

TEST(OneLongRunTest, ThinningTakesMultipleSteps) {
  const Graph g = MakeCycle(101).value();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  OneLongRunSampler::Options opts;
  opts.thinning = 5;
  OneLongRunSampler sampler(&access, &srw, 0, opts, 8);
  ASSERT_TRUE(sampler.Draw().ok());
  // On a cycle, 5 SRW steps move to a node of matching parity: distance
  // from the previous sample is odd. Just verify draws keep succeeding and
  // nodes change over time.
  std::set<NodeId> seen;
  for (int i = 0; i < 50; ++i) seen.insert(sampler.Draw().value());
  EXPECT_GT(seen.size(), 5u);
}

TEST(OneLongRunTest, DependentSamplesHaveLowerEffectiveSize) {
  // §6.1: consecutive long-run samples are autocorrelated, so the effective
  // sample size of the degree sequence is well below the nominal count.
  const Graph g = testing::MakeTestBA(200, 3);
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  OneLongRunSampler::Options opts;
  OneLongRunSampler sampler(&access, &srw, 0, opts, 9);
  std::vector<double> degree_chain;
  constexpr int kLen = 3000;
  for (int i = 0; i < kLen; ++i) {
    degree_chain.push_back(
        static_cast<double>(g.Degree(sampler.Draw().value())));
  }
  const double ess = EffectiveSampleSize(degree_chain);
  EXPECT_LT(ess, 0.9 * kLen);
  EXPECT_GT(ess, 1.0);
}

}  // namespace
}  // namespace wnw
