// Streaming out-of-core ingestion (storage/ingest.h): the external-sort
// pipeline must produce snapshots byte-identical to the in-memory writer on
// the same edge stream — across duplicate edges straddling run boundaries,
// self-loops under both policies, reversed/unsorted input, empty and
// single-node graphs, clamped merge fan-in, and multi-pass merges — and
// must fail gracefully (InvalidArgument, never OOM) when the sort buffer
// cannot hold a chunk. Temp files never outlive the call.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "storage/ingest.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace wnw {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wnw_ingest_test_" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

/// Replays a fixed edge vector; lets tests feed the identical stream to the
/// streaming pipeline and to the in-memory reference.
class VecEdgeSource : public EdgeSource {
 public:
  explicit VecEdgeSource(std::vector<InputEdge> edges, NodeId floor = 0)
      : edges_(std::move(edges)), floor_(floor) {}

  Result<size_t> Next(std::span<InputEdge> out) override {
    size_t produced = 0;
    while (produced < out.size() && pos_ < edges_.size()) {
      out[produced++] = edges_[pos_++];
    }
    return produced;
  }
  NodeId min_num_nodes() const override { return floor_; }

 private:
  std::vector<InputEdge> edges_;
  size_t pos_ = 0;
  NodeId floor_ = 0;
};

/// Streams `edges` with the given options and separately builds the graph
/// in memory from the same stream; asserts the two snapshot files are
/// byte-for-byte identical and returns the streaming stats.
storage::IngestStats ExpectIdentical(const std::vector<InputEdge>& edges,
                                     storage::IngestOptions options,
                                     const std::string& tag,
                                     NodeId floor = 0) {
  const std::string streamed_path = TempPath(tag + "_streamed.snap");
  const std::string reference_path = TempPath(tag + "_reference.snap");

  VecEdgeSource streamed_source(edges, floor);
  auto stats =
      storage::StreamGraphSnapshot(streamed_source, streamed_path, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();

  VecEdgeSource reference_source(edges, floor);
  auto graph =
      BuildGraphFromEdgeSource(reference_source, options.allow_self_loops);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(WriteGraphSnapshot(*graph, reference_path, {}).ok());

  const std::vector<char> streamed = ReadAll(streamed_path);
  const std::vector<char> reference = ReadAll(reference_path);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(streamed, reference) << tag << ": streamed snapshot is not "
                                 << "byte-identical to the in-memory writer";

  std::remove(streamed_path.c_str());
  std::remove(reference_path.c_str());
  return stats.ok() ? *stats : storage::IngestStats{};
}

std::vector<InputEdge> RandomEdges(NodeId n, uint64_t m, uint64_t seed) {
  RandomEdgeSource source(n, m, seed);
  std::vector<InputEdge> edges(m);
  size_t filled = 0;
  while (filled < m) {
    auto got = source.Next(std::span<InputEdge>(edges).subspan(filled));
    EXPECT_TRUE(got.ok());
    if (*got == 0) break;
    filled += *got;
  }
  EXPECT_EQ(filled, m);
  return edges;
}

TEST(StreamingIngestTest, IdentityOnRandomMultigraph) {
  // Default options: everything fits in one run.
  storage::IngestOptions options;
  const auto stats =
      ExpectIdentical(RandomEdges(500, 3000, 11), options, "rand_one_run");
  EXPECT_EQ(stats.input_edges, 3000u);
  EXPECT_EQ(stats.sorted_runs, 1u);
  EXPECT_EQ(stats.merge_passes, 0u);
}

TEST(StreamingIngestTest, IdentityAcrossRunBoundariesAndMergePasses) {
  // A tiny sort buffer forces hundreds of runs, and fan-in 2 forces many
  // intermediate merge passes; duplicates and both orientations straddle
  // run boundaries constantly.
  storage::IngestOptions options;
  options.sort_buffer_entries = 64;
  options.merge_fan_in = 2;
  const auto stats = ExpectIdentical(RandomEdges(200, 5000, 7), options,
                                     "rand_many_runs");
  EXPECT_GT(stats.sorted_runs, 100u);
  EXPECT_GT(stats.merge_passes, 0u);
}

TEST(StreamingIngestTest, IdentityOnScaleFreeGraphViaAdapter) {
  const Graph g = testing::MakeTestBA(800, 5);
  const std::string streamed_path = TempPath("ba_streamed.snap");
  const std::string reference_path = TempPath("ba_reference.snap");

  GraphEdgeSource source(&g);
  storage::IngestOptions options;
  options.sort_buffer_entries = 1024;
  auto stats = storage::StreamGraphSnapshot(source, streamed_path, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(WriteGraphSnapshot(g, reference_path, {}).ok());
  EXPECT_EQ(ReadAll(streamed_path), ReadAll(reference_path));

  // And the streamed file must serve the same topology through the loader.
  auto loaded = LoadGraphSnapshot(streamed_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->graph.num_nodes(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(testing::ToVec(loaded->graph.Neighbors(u)),
              testing::ToVec(g.Neighbors(u)));
  }
  std::remove(streamed_path.c_str());
  std::remove(reference_path.c_str());
}

TEST(StreamingIngestTest, DuplicatesReversalsAndSelfLoopsDropped) {
  std::vector<InputEdge> edges;
  for (int rep = 0; rep < 20; ++rep) {
    edges.push_back({4, 1});  // reversed orientation
    edges.push_back({1, 4});
    edges.push_back({2, 2});  // self-loop (dropped by default)
    edges.push_back({3, 0});
    edges.push_back({0, 3});
  }
  storage::IngestOptions options;
  options.sort_buffer_entries = 4;  // duplicates straddle every run
  const auto stats = ExpectIdentical(edges, options, "dups_dropped");
  EXPECT_EQ(stats.input_edges, 100u);
  EXPECT_EQ(stats.dropped_self_loops, 20u);
  EXPECT_EQ(stats.num_edges, 2u);
  EXPECT_EQ(stats.num_nodes, 5u);  // node 2 exists though its loop dropped
}

TEST(StreamingIngestTest, SelfLoopsKeptWhenAllowed) {
  std::vector<InputEdge> edges = {{0, 1}, {2, 2}, {1, 0}, {2, 2}};
  storage::IngestOptions options;
  options.allow_self_loops = true;
  options.sort_buffer_entries = 2;
  const auto stats = ExpectIdentical(edges, options, "loops_kept");
  EXPECT_EQ(stats.num_edges, 2u);          // (0,1) and the loop at 2
  EXPECT_EQ(stats.adjacency_entries, 3u);  // loop contributes one endpoint
}

TEST(StreamingIngestTest, EmptyAndSingleNodeGraphs) {
  ExpectIdentical({}, {}, "empty");
  // One isolated node: only observable via the declared floor.
  const auto stats = ExpectIdentical({}, {}, "single", /*floor=*/1);
  EXPECT_EQ(stats.num_nodes, 1u);
  EXPECT_EQ(stats.num_edges, 0u);
}

TEST(StreamingIngestTest, IsolatedTrailingNodesViaOptionFloor) {
  storage::IngestOptions options;
  options.min_num_nodes = 50;
  const auto stats =
      ExpectIdentical({{0, 1}, {1, 2}}, options, "floor_opt", /*floor=*/50);
  EXPECT_EQ(stats.num_nodes, 50u);
}

TEST(StreamingIngestTest, MergeFanInOfOneIsClampedAndCompletes) {
  storage::IngestOptions options;
  options.merge_fan_in = 1;  // would never reduce the run count unclamped
  options.sort_buffer_entries = 8;
  const auto stats =
      ExpectIdentical(RandomEdges(50, 400, 3), options, "fan_in_one");
  EXPECT_GT(stats.sorted_runs, 2u);
}

TEST(StreamingIngestTest, UndersizedBufferIsInvalidArgumentNotOom) {
  VecEdgeSource source({{0, 1}});
  storage::IngestOptions options;
  options.memory_budget_bytes = 1024;  // below the documented minimum
  auto result =
      storage::StreamGraphSnapshot(source, TempPath("tiny.snap"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  VecEdgeSource source2({{0, 1}});
  storage::IngestOptions options2;
  options2.sort_buffer_entries = 1;  // cannot hold one edge's orientations
  auto result2 =
      storage::StreamGraphSnapshot(source2, TempPath("tiny2.snap"), options2);
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingIngestTest, OriginalIdsStreamFromEdgeListFile) {
  const std::string edges_path = TempPath("edges.txt");
  {
    std::ofstream out(edges_path);
    out << "# comment\n1000 2000\n2000 3000\n1000 3000\n3000 1000\n";
  }
  const std::string streamed_path = TempPath("ids_streamed.snap");
  const std::string reference_path = TempPath("ids_reference.snap");

  {
    auto source = EdgeListFileSource::Open(edges_path);
    ASSERT_TRUE(source.ok());
    auto stats = storage::StreamGraphSnapshot(**source, streamed_path, {});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  {
    auto loaded = LoadEdgeList(edges_path);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(WriteGraphSnapshot(loaded->graph, reference_path,
                                   {.original_ids = loaded->original_id})
                    .ok());
  }
  EXPECT_EQ(ReadAll(streamed_path), ReadAll(reference_path));

  auto loaded = LoadGraphSnapshot(streamed_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->original_id,
            (std::vector<uint64_t>{1000, 2000, 3000}));
  std::remove(edges_path.c_str());
  std::remove(streamed_path.c_str());
  std::remove(reference_path.c_str());
}

TEST(StreamingIngestTest, TempFilesNeverOutliveTheCall) {
  namespace fs = std::filesystem;
  const std::string temp_dir = TempPath("ingest_tmp_dir");
  fs::create_directories(temp_dir);

  const std::string out_path = TempPath("tmpcheck.snap");
  storage::IngestOptions options;
  options.temp_dir = temp_dir;
  options.sort_buffer_entries = 16;  // several runs, so temps really exist
  options.merge_fan_in = 2;
  {
    VecEdgeSource source(RandomEdges(100, 600, 5));
    auto stats = storage::StreamGraphSnapshot(source, out_path, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  EXPECT_TRUE(fs::is_empty(temp_dir)) << "run/offset temp files leaked";
  EXPECT_FALSE(fs::exists(out_path + ".tmp")) << "writer temp leaked";
  EXPECT_TRUE(fs::exists(out_path));

  // Failure path: an invalid output directory must clean the temps up too.
  const std::string bad_path = TempPath("no_such_dir") + "/out.snap";
  VecEdgeSource source(RandomEdges(100, 600, 5));
  storage::IngestOptions bad_options = options;
  auto result = storage::StreamGraphSnapshot(source, bad_path, bad_options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(fs::is_empty(temp_dir)) << "temp files leaked on failure";

  fs::remove_all(temp_dir);
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace wnw
