// Cross-module property sweeps: invariants that must hold for EVERY
// (transition design x graph family) combination, exercised via
// parameterized suites rather than hand-picked cases.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "access/access_interface.h"
#include "core/walk_estimate.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mcmc/distribution.h"
#include "mcmc/spectral.h"
#include "mcmc/transition.h"
#include "test_util.h"

namespace wnw {
namespace {

Graph MakeFamilyGraph(const std::string& family) {
  if (family == "house") return testing::MakeHouseGraph();
  if (family == "cycle") return MakeCycle(15).value();
  if (family == "hypercube") return MakeHypercube(4).value();
  if (family == "tree") return MakeBalancedBinaryTree(3).value();
  if (family == "barbell") return MakeBarbell(11).value();
  if (family == "ba") return testing::MakeTestBA(40, 3);
  if (family == "complete") return MakeComplete(8).value();
  ADD_FAILURE() << "unknown family " << family;
  return testing::MakeHouseGraph();
}

std::unique_ptr<TransitionDesign> MakeFamilyDesign(const std::string& spec,
                                                   const Graph& g) {
  if (spec == "maxdeg") {
    return std::make_unique<MaxDegreeWalk>(g.max_degree() + 1);
  }
  return MakeTransitionDesign(spec);
}

using Combo = std::tuple<std::string, std::string>;  // (design, family)

class DesignGraphProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(DesignGraphProperty, RowsAreDistributions) {
  const auto& [spec, family] = GetParam();
  const Graph g = MakeFamilyGraph(family);
  auto design = MakeFamilyDesign(spec, g);
  const auto tm = TransitionMatrix::Build(g, *design);
  EXPECT_LT(tm.MaxRowSumError(), 1e-12);
}

TEST_P(DesignGraphProperty, StationaryIsFixedPoint) {
  const auto& [spec, family] = GetParam();
  const Graph g = MakeFamilyGraph(family);
  auto design = MakeFamilyDesign(spec, g);
  const auto tm = TransitionMatrix::Build(g, *design);
  const auto pi = StationaryDistribution(g, *design);
  const auto next = tm.Multiply(pi);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(next[u], pi[u], 1e-12) << spec << "/" << family << " " << u;
  }
}

TEST_P(DesignGraphProperty, DetailedBalanceHolds) {
  // All shipped designs are reversible: pi(u) T(u,v) == pi(v) T(v,u).
  const auto& [spec, family] = GetParam();
  const Graph g = MakeFamilyGraph(family);
  auto design = MakeFamilyDesign(spec, g);
  AccessInterface access(&g);
  const auto pi = StationaryDistribution(g, *design);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      const double forward = pi[u] * design->TransitionProb(access, u, v);
      const double backward = pi[v] * design->TransitionProb(access, v, u);
      EXPECT_NEAR(forward, backward, 1e-13)
          << spec << "/" << family << " edge " << u << "-" << v;
    }
  }
}

TEST_P(DesignGraphProperty, StepStaysOnEdgesOrSelf) {
  const auto& [spec, family] = GetParam();
  const Graph g = MakeFamilyGraph(family);
  auto design = MakeFamilyDesign(spec, g);
  AccessInterface access(&g);
  Rng rng(11);
  NodeId cur = 0;
  for (int i = 0; i < 500; ++i) {
    const NodeId next = design->Step(access, cur, rng);
    EXPECT_TRUE(next == cur || g.HasEdge(cur, next))
        << spec << "/" << family;
    cur = next;
  }
}

TEST_P(DesignGraphProperty, TransitionEstimateIsUnbiased) {
  // E[TransitionProbEstimate(u, v)] == TransitionProb(u, v), including the
  // MHRW self-loop shortcut.
  const auto& [spec, family] = GetParam();
  const Graph g = MakeFamilyGraph(family);
  auto design = MakeFamilyDesign(spec, g);
  AccessInterface access(&g);
  Rng rng(13);
  const NodeId u = g.num_nodes() / 2;
  for (NodeId v : {u, g.Neighbors(u).empty() ? u : g.Neighbors(u)[0]}) {
    const double exact = design->TransitionProb(access, u, v);
    double sum = 0;
    constexpr int kReps = 20000;
    for (int i = 0; i < kReps; ++i) {
      sum += design->TransitionProbEstimate(access, u, v, rng);
    }
    EXPECT_NEAR(sum / kReps, exact, 0.02) << spec << "/" << family;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignGraphProperty,
    ::testing::Combine(::testing::Values("srw", "mhrw", "lazy", "maxdeg"),
                       ::testing::Values("house", "cycle", "hypercube",
                                         "tree", "barbell", "ba",
                                         "complete")),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

class GeneratorProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorProperty, HandshakeLemma) {
  const Graph g = MakeFamilyGraph(GetParam());
  uint64_t deg_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) deg_sum += g.Degree(u);
  EXPECT_EQ(deg_sum, 2 * g.num_edges());
}

TEST_P(GeneratorProperty, NeighborListsSortedAndSymmetric) {
  const Graph g = MakeFamilyGraph(GetParam());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.Neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (NodeId v : nbrs) EXPECT_TRUE(g.HasEdge(v, u));
  }
}

TEST_P(GeneratorProperty, SpectralGapWithinBounds) {
  const Graph g = MakeFamilyGraph(GetParam());
  if (!IsConnected(g)) GTEST_SKIP();
  MetropolisHastingsWalk mhrw;
  const auto r = ComputeSpectralGap(g, mhrw).value();
  EXPECT_GE(r.second_eigenvalue, -1.0 - 1e-9);
  EXPECT_LE(r.second_eigenvalue, 1.0 + 1e-9);
  EXPECT_GE(r.spectral_gap, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorProperty,
                         ::testing::Values("house", "cycle", "hypercube",
                                           "tree", "barbell", "ba",
                                           "complete"));

class WalkEstimateProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(WalkEstimateProperty, TelemetryConsistentAcrossVariants) {
  const Graph g = testing::MakeTestBA(50, 3);
  auto design = MakeTransitionDesign(GetParam());
  for (auto variant :
       {WalkEstimateVariant::kFull, WalkEstimateVariant::kNone,
        WalkEstimateVariant::kCrawlOnly, WalkEstimateVariant::kWeightedOnly}) {
    AccessInterface access(&g);
    WalkEstimateOptions opts;
    opts.diameter_bound = 4;
    ApplyVariant(variant, &opts);
    WalkEstimateSampler sampler(&access, design.get(), 0, opts, 17);
    for (int i = 0; i < 25; ++i) ASSERT_TRUE(sampler.Draw().ok());
    EXPECT_EQ(sampler.samples_accepted(), 25u);
    EXPECT_GE(sampler.candidates_tried(), sampler.samples_accepted());
    EXPECT_EQ(sampler.forward_steps(),
              sampler.candidates_tried() *
                  static_cast<uint64_t>(sampler.walk_length()));
    EXPECT_GT(access.query_cost(), 0u);
    EXPECT_GE(access.total_queries(), access.query_cost());
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, WalkEstimateProperty,
                         ::testing::Values("srw", "mhrw", "lazy"));

}  // namespace
}  // namespace wnw
