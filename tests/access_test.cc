#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "access/access_interface.h"
#include "access/rate_limiter.h"
#include "graph/generators.h"
#include "test_util.h"

namespace wnw {
namespace {

TEST(FlatNodeMapTest, FindEmplaceGrowAndClear) {
  FlatNodeMap<std::vector<NodeId>> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  // Insert enough entries to force several growths; spans into each stored
  // vector's heap buffer must survive them (that's the documented contract
  // the session caches rely on).
  std::vector<std::span<const NodeId>> views;
  for (NodeId key = 0; key < 200; ++key) {
    std::vector<NodeId> value = {key, key + 1, key + 2};
    views.push_back(map.Emplace(key, std::move(value)));
  }
  EXPECT_EQ(map.size(), 200u);
  for (NodeId key = 0; key < 200; ++key) {
    ASSERT_EQ(views[key].size(), 3u);
    EXPECT_EQ(views[key][0], key);  // heap buffer survived table growth
    const std::vector<NodeId>* found = map.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ((*found)[2], key + 2);
  }
  EXPECT_FALSE(map.Contains(200));

  // Emplace mirrors unordered_map::emplace — no overwrite of an entry.
  std::vector<NodeId> other = {99};
  EXPECT_EQ(map.Emplace(0, std::move(other)).size(), 3u);

  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(0), nullptr);
  map.Emplace(5, {42});
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(map.Find(5)->front(), 42u);
}

TEST(AccessTest, NeighborsMatchGraph) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  const auto nbrs = access.Neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(access.Degree(2), 3u);
}

TEST(AccessTest, UniqueCostCountsDistinctNodes) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  EXPECT_EQ(access.query_cost(), 0u);
  access.Neighbors(0);
  access.Neighbors(0);
  access.Neighbors(1);
  EXPECT_EQ(access.query_cost(), 2u);    // nodes {0, 1}
  EXPECT_EQ(access.total_queries(), 3u); // three invocations
  EXPECT_TRUE(access.Seen(0));
  EXPECT_FALSE(access.Seen(4));
}

TEST(AccessTest, ResetCountersClears) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  access.Neighbors(0);
  access.ResetCounters();
  EXPECT_EQ(access.query_cost(), 0u);
  EXPECT_EQ(access.total_queries(), 0u);
  EXPECT_FALSE(access.Seen(0));
}

TEST(AccessTest, SampleNeighborUniform) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  Rng rng(1);
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) counts[access.SampleNeighbor(0, rng)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[4], 0);
  for (NodeId v : {1u, 2u, 3u}) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / kDraws, 1.0 / 3.0, 0.02);
  }
}

TEST(AccessTest, IsolatedNodeSampleReturnsInvalid) {
  GraphBuilder b(2);
  const Graph g = std::move(b).Build().value();
  AccessInterface access(&g);
  Rng rng(2);
  EXPECT_EQ(access.SampleNeighbor(0, rng), kInvalidNode);
}

TEST(AccessRandomSubsetTest, ReturnsAtMostK) {
  const Graph g = MakeStar(50).value();  // center degree 49
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 10;
  AccessInterface access(&g, opts);
  EXPECT_EQ(access.Neighbors(0).size(), 10u);
  // Leaves are below the cap: full list.
  EXPECT_EQ(access.Neighbors(1).size(), 1u);
}

TEST(AccessRandomSubsetTest, VariesAcrossCalls) {
  const Graph g = MakeStar(200).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 5;
  AccessInterface access(&g, opts);
  std::set<std::vector<NodeId>> observed;
  for (int i = 0; i < 10; ++i) {
    const auto nbrs = access.Neighbors(0);
    observed.emplace(nbrs.begin(), nbrs.end());
  }
  EXPECT_GT(observed.size(), 1u);  // type 1: fresh subsets per invocation
}

TEST(AccessFixedSubsetTest, StableAcrossCalls) {
  const Graph g = MakeStar(200).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kFixedSubset;
  opts.max_neighbors = 5;
  AccessInterface access(&g, opts);
  const auto first = access.Neighbors(0);
  const std::vector<NodeId> snapshot(first.begin(), first.end());
  for (int i = 0; i < 5; ++i) {
    const auto again = access.Neighbors(0);
    EXPECT_EQ(std::vector<NodeId>(again.begin(), again.end()), snapshot);
  }
}

TEST(AccessFixedSubsetTest, DeterministicAcrossSessions) {
  const Graph g = MakeStar(200).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kFixedSubset;
  opts.max_neighbors = 5;
  opts.seed = 77;
  AccessInterface a(&g, opts), b(&g, opts);
  const auto na = a.Neighbors(0);
  const auto nb = b.Neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(na.begin(), na.end()),
            std::vector<NodeId>(nb.begin(), nb.end()));
}

TEST(AccessTruncatedTest, ReturnsPrefix) {
  const Graph g = MakeStar(50).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kTruncated;
  opts.max_neighbors = 3;
  AccessInterface access(&g, opts);
  const auto nbrs = access.Neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{1, 2, 3}));
}

TEST(AccessTruncatedTest, BidirectionalCheckFiltersAsymmetricEdges) {
  // Star center truncated to 3 of its 49 leaves; leaves always see the
  // center. Effective neighbors of the center are exactly its visible 3.
  const Graph g = MakeStar(50).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kTruncated;
  opts.max_neighbors = 3;
  opts.bidirectional_check = true;
  AccessInterface access(&g, opts);
  EXPECT_EQ(access.EffectiveNeighbors(0).size(), 3u);
  // A leaf outside the center's truncated list: the center does not list it,
  // so the mutual check removes its only edge.
  EXPECT_EQ(access.EffectiveNeighbors(30).size(), 0u);
  // A leaf inside the center's list keeps the edge.
  EXPECT_EQ(access.EffectiveNeighbors(1).size(), 1u);
}

TEST(AccessTruncatedTest, UntruncatedGraphUnaffected) {
  const Graph g = testing::MakeTestBA(60, 3);
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kTruncated;
  opts.max_neighbors = 1000;  // above every degree
  AccessInterface access(&g, opts);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto eff = access.EffectiveNeighbors(u);
    const auto full = g.Neighbors(u);
    EXPECT_EQ(std::vector<NodeId>(eff.begin(), eff.end()),
              std::vector<NodeId>(full.begin(), full.end()));
  }
}

TEST(AccessTruncatedTest, EffectiveViewIsSymmetric) {
  const Graph g = testing::MakeTestBA(80, 4);
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kFixedSubset;
  opts.max_neighbors = 4;
  opts.bidirectional_check = true;
  AccessInterface access(&g, opts);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : access.EffectiveNeighbors(u)) {
      const auto back = access.EffectiveNeighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
          << "edge (" << u << "," << v << ") not mutual";
    }
  }
}

TEST(MarkRecaptureTest, ExactWhenNotTruncated) {
  const Graph g = testing::MakeHouseGraph();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 10;
  AccessInterface access(&g, opts);
  EXPECT_DOUBLE_EQ(EstimateDegreeMarkRecapture(access, 0, 4), 3.0);
}

TEST(MarkRecaptureTest, EstimatesTruncatedDegree) {
  const Graph g = MakeStar(201).value();  // center degree 200
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 40;
  AccessInterface access(&g, opts);
  const double est = EstimateDegreeMarkRecapture(access, 0, 30);
  EXPECT_NEAR(est, 200.0, 30.0);
}

TEST(RateLimiterTest, DisabledByDefault) {
  SimulatedRateLimiter limiter;
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) limiter.OnQuery();
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 0.0);
  EXPECT_EQ(limiter.total_queries(), 100u);
}

TEST(RateLimiterTest, WaitsBetweenWindows) {
  // Twitter-style: 15 queries per 900 s window.
  SimulatedRateLimiter limiter({15, 900.0});
  for (int i = 0; i < 15; ++i) limiter.OnQuery();
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 0.0);
  limiter.OnQuery();  // 16th query crosses into the next window
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 900.0);
  for (int i = 0; i < 14; ++i) limiter.OnQuery();
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 900.0);
  limiter.OnQuery();
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 1800.0);
}

TEST(RateLimiterTest, ResetRestoresTokens) {
  SimulatedRateLimiter limiter({2, 10.0});
  limiter.OnQuery();
  limiter.OnQuery();
  limiter.Reset();
  limiter.OnQuery();
  EXPECT_DOUBLE_EQ(limiter.waited_seconds(), 0.0);
}

TEST(AccessTest, RateLimitAccounting) {
  const Graph g = MakeCycle(100).value();
  AccessOptions opts;
  opts.rate_limit = {10, 60.0};
  AccessInterface access(&g, opts);
  for (NodeId u = 0; u < 25; ++u) access.Neighbors(u);
  // 25 unique queries with 10 per minute: 2 full waits.
  EXPECT_DOUBLE_EQ(access.waited_seconds(), 120.0);
  // Cache hits are free: re-visiting does not wait.
  for (NodeId u = 0; u < 25; ++u) access.Neighbors(u);
  EXPECT_DOUBLE_EQ(access.waited_seconds(), 120.0);
}

}  // namespace
}  // namespace wnw
