// The disk-backed origin: SnapshotBackend must be indistinguishable from
// InMemoryBackend — node for node, restriction for restriction, sampler for
// sampler, sharded or not — and the spec keys ?snapshot= / ?cache_file=
// must fail loudly on every conflicting or broken input.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "access/snapshot_backend.h"
#include "core/session.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/check.h"

namespace wnw {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wnw_snapbackend_test_" + name;
}

// One snapshot of the shared test graph, written once per process.
const Graph& TestGraph() {
  static const Graph g = testing::MakeTestBA(120, 3);
  return g;
}

const std::string& TestSnapshotPath() {
  static const std::string path = [] {
    const std::string p = TempPath("graph.snap");
    const ShardedGraph sharded =
        ShardedGraph::FromGraph(TestGraph(), 3,
                                ShardPartition::kDegreeBalanced)
            .value();
    WNW_CHECK(WriteGraphSnapshot(TestGraph(), p, {.sharded = &sharded}).ok());
    return p;
  }();
  return path;
}

TEST(SnapshotBackendTest, MatchesInMemoryResponsesNodeForNode) {
  const Graph& g = TestGraph();
  for (const NeighborRestriction restriction :
       {NeighborRestriction::kNone, NeighborRestriction::kFixedSubset,
        NeighborRestriction::kTruncated}) {
    AccessOptions opts;
    opts.restriction = restriction;
    if (restriction != NeighborRestriction::kNone) opts.max_neighbors = 2;
    opts.seed = 99;
    InMemoryBackend memory(&g, opts);
    auto snapshot = SnapshotBackend::Open(TestSnapshotPath(), opts);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    EXPECT_EQ((*snapshot)->num_nodes(), g.num_nodes());
    EXPECT_TRUE((*snapshot)->graph().storage_mapped());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      auto a = memory.FetchNeighbors(u);
      auto b = (*snapshot)->FetchNeighbors(u);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->TakeNeighbors(), b->TakeNeighbors())
          << "node " << u << " restriction "
          << static_cast<int>(restriction);
    }
  }
}

TEST(SnapshotBackendTest, OutOfRangeNodeIsStatusNotCrash) {
  auto snapshot = SnapshotBackend::Open(TestSnapshotPath());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->FetchNeighbors(10'000'000).status().code(),
            StatusCode::kOutOfRange);
}

// The tentpole acceptance invariant: every registered sampler draws
// byte-identical samples at identical query cost whether the origin serves
// from the heap or from the mmap'd snapshot — unsharded and sharded.
TEST(SnapshotAcceptanceTest, EverySamplerDrawsIdenticallyOnSnapshotOrigin) {
  const Graph& g = TestGraph();
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    const std::string base =
        name + ":srw" + (name.rfind("we", 0) == 0 ? "?diameter=4" : "");
    const char sep = base.find('?') == std::string::npos ? '?' : '&';
    SessionOptions opts;
    opts.seed = 4242;

    auto memory_session = SamplingSession::Open(&g, base, opts);
    ASSERT_TRUE(memory_session.ok()) << base;
    std::vector<NodeId> baseline;
    ASSERT_TRUE((*memory_session)->DrawInto(&baseline, 12).ok()) << base;
    const uint64_t baseline_cost = (*memory_session)->Stats().query_cost;

    // Unsharded snapshot origin, selected through the spec string.
    const std::string snap_spec =
        base + sep + "snapshot=" + TestSnapshotPath();
    auto snap_session = SamplingSession::Open(&g, snap_spec, opts);
    ASSERT_TRUE(snap_session.ok())
        << snap_spec << ": " << snap_session.status().ToString();
    std::vector<NodeId> snap_samples;
    ASSERT_TRUE((*snap_session)->DrawInto(&snap_samples, 12).ok());
    EXPECT_EQ((*snap_session)->Stats().backend, "snapshot");
    EXPECT_EQ(snap_samples, baseline) << snap_spec;
    EXPECT_EQ((*snap_session)->Stats().query_cost, baseline_cost)
        << snap_spec;

    // Sharded snapshot origin: 3 shards match the file's own sections
    // (served straight from the mapping); 2 shards force an in-memory
    // re-partition — identical samples either way.
    for (const int shards : {3, 2}) {
      const std::string sharded_spec =
          base + sep + "shards=" + std::to_string(shards) +
          "&partition=degree&snapshot=" + TestSnapshotPath();
      auto sharded_session = SamplingSession::Open(&g, sharded_spec, opts);
      ASSERT_TRUE(sharded_session.ok())
          << sharded_spec << ": " << sharded_session.status().ToString();
      std::vector<NodeId> sharded_samples;
      ASSERT_TRUE((*sharded_session)->DrawInto(&sharded_samples, 12).ok());
      EXPECT_EQ(sharded_samples, baseline) << sharded_spec;
      EXPECT_EQ((*sharded_session)->Stats().query_cost, baseline_cost)
          << sharded_spec;
      EXPECT_EQ((*sharded_session)->Stats().backend,
                "sharded[degree:" + std::to_string(shards) + "](snapshot)");
    }
  }
}

// The trusted-open fast path: ?snapshot_verify=off skips the checksum and
// shard-consistency scans at open time but serves the exact same bytes —
// samples and costs must not move.
TEST(SnapshotAcceptanceTest, TrustedOpenDrawsIdenticalSamples) {
  const Graph& g = TestGraph();
  SessionOptions opts;
  opts.seed = 515;
  for (const std::string& extra :
       {std::string(""), std::string("&shards=3&partition=degree")}) {
    const std::string base =
        "burnin:srw?snapshot=" + TestSnapshotPath() + extra;
    auto verified = SamplingSession::Open(&g, base, opts);
    ASSERT_TRUE(verified.ok()) << base;
    std::vector<NodeId> expected;
    ASSERT_TRUE((*verified)->DrawInto(&expected, 15).ok());

    auto trusted =
        SamplingSession::Open(&g, base + "&snapshot_verify=off", opts);
    ASSERT_TRUE(trusted.ok())
        << base << ": " << trusted.status().ToString();
    std::vector<NodeId> samples;
    ASSERT_TRUE((*trusted)->DrawInto(&samples, 15).ok());
    EXPECT_EQ(samples, expected) << base;
    EXPECT_EQ((*trusted)->Stats().query_cost,
              (*verified)->Stats().query_cost);
  }

  // The knob is validated: only on/off (and bool aliases) parse, and it
  // refuses to ride along without a snapshot origin.
  EXPECT_EQ(SamplingSession::Open(
                &g, "burnin:srw?snapshot=" + TestSnapshotPath() +
                        "&snapshot_verify=maybe")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?snapshot_verify=on")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotSpecTest, BrokenAndConflictingInputsAreStatuses) {
  const Graph& g = TestGraph();
  // Missing file: a Status, not a crash.
  EXPECT_FALSE(
      SamplingSession::Open(&g, "burnin:srw?snapshot=/no/such/file.snap")
          .ok());
  // Empty path.
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?snapshot=").status().code(),
            StatusCode::kInvalidArgument);
  // backend=memory contradicts the snapshot origin.
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?backend=memory&snapshot=" +
                                          TestSnapshotPath())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Explicit backend + snapshot key: loud conflict.
  SessionOptions with_backend;
  with_backend.backend = std::make_shared<InMemoryBackend>(&g);
  EXPECT_EQ(SamplingSession::Open(
                &g, "burnin:srw?snapshot=" + TestSnapshotPath(), with_backend)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A snapshot of a different graph: node counts disagree.
  const Graph other = testing::MakeTestBA(60, 3, /*seed=*/11);
  const std::string other_path = TempPath("other.snap");
  ASSERT_TRUE(WriteGraphSnapshot(other, other_path).ok());
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?snapshot=" + other_path)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  std::remove(other_path.c_str());
}

TEST(SnapshotSpecTest, LatencyDecoratorComposesOverSnapshotOrigin) {
  const Graph& g = TestGraph();
  SessionOptions opts;
  opts.seed = 7;
  auto session = SamplingSession::Open(
      &g,
      "burnin:srw?backend=latency&mean_ms=5&snapshot=" + TestSnapshotPath(),
      opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::vector<NodeId> samples;
  ASSERT_TRUE((*session)->DrawInto(&samples, 3).ok());
  const SessionStats stats = (*session)->Stats();
  EXPECT_EQ(stats.backend, "latency(snapshot)");
  EXPECT_GT(stats.waited_seconds, 0.0);
}

TEST(CacheFileSpecTest, SecondSessionWarmStartsFromTheFile) {
  const Graph& g = TestGraph();
  const std::string cache_path = TempPath("session.wnwcache");
  std::remove(cache_path.c_str());
  const std::string spec = "burnin:srw?cache_file=" + cache_path;
  SessionOptions opts;
  opts.seed = 21;

  std::vector<NodeId> cold_samples;
  uint64_t cold_cost = 0;
  {
    auto session = SamplingSession::Open(&g, spec, opts);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE((*session)->DrawInto(&cold_samples, 10).ok());
    const SessionStats stats = (*session)->Stats();
    EXPECT_TRUE(stats.cache_attached);
    EXPECT_EQ(stats.cache_file, cache_path);
    cold_cost = stats.query_cost;
    EXPECT_GT(cold_cost, 0u);
    // Closing the session persists the cache (destructor path).
  }
  {
    auto session = SamplingSession::Open(&g, spec, opts);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    std::vector<NodeId> warm_samples;
    ASSERT_TRUE((*session)->DrawInto(&warm_samples, 10).ok());
    const SessionStats stats = (*session)->Stats();
    EXPECT_EQ(warm_samples, cold_samples);  // history never changes results
    EXPECT_LT(stats.query_cost, cold_cost);  // it only makes them cheaper
    EXPECT_GT(stats.cache_entries, 0u);
    EXPECT_GT(stats.cache_hits, 0u);
  }
  std::remove(cache_path.c_str());
}

TEST(CacheFileSpecTest, ConflictsWithExplicitCacheAndBadValues) {
  const Graph& g = TestGraph();
  SessionOptions with_cache;
  with_cache.query_cache = std::make_shared<QueryCache>();
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?cache_file=/tmp/x.wnwcache",
                                  with_cache)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?cache_file=").status().code(),
      StatusCode::kInvalidArgument);
  // Spec key vs programmatic path: never silently clobber one with the
  // other (same convention as backend/shards/window conflicts).
  SessionOptions with_path;
  with_path.cache_file = "/tmp/a.wnwcache";
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?cache_file=/tmp/b.wnwcache",
                                  with_path)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  SessionOptions with_snapshot;
  with_snapshot.snapshot = "/tmp/a.snap";
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?snapshot=/tmp/b.snap",
                                  with_snapshot)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wnw
