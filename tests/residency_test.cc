// ResidencyManager contract tests with an injected fake pager: every
// madvise-shaped decision (prefetch ordering, budget eviction, pin
// protection, release edge cases) is observable and deterministic —
// background=false queues WillNeed jobs until Drain().
#include "storage/residency.h"

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace wnw::storage {
namespace {

struct PagerCall {
  char op;  // 'W' = WillNeed, 'D' = DontNeed
  const std::byte* data;
  size_t size;

  bool operator==(const PagerCall&) const = default;
};

// The manager drops its lock around pager calls, so a background worker and
// a draining caller can advise concurrently — the fake must take its own.
class FakePager final : public Pager {
 public:
  void WillNeed(const std::byte* data, size_t size) override {
    std::lock_guard<std::mutex> lock(mu);
    calls.push_back({'W', data, size});
  }
  void DontNeed(const std::byte* data, size_t size) override {
    std::lock_guard<std::mutex> lock(mu);
    calls.push_back({'D', data, size});
  }
  uint64_t ResidentBytes(const std::byte* data, size_t size) override {
    (void)data;
    return size;  // report every page "in", so callers see the query span
  }

  size_t Count(char op) const {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const PagerCall& c : calls) {
      if (c.op == op) ++n;
    }
    return n;
  }

  mutable std::mutex mu;
  std::vector<PagerCall> calls;
};

// A page-aligned fake arena: spans of 32 "bytes" (two 16-byte fake pages).
alignas(64) std::byte g_arena[256];

constexpr size_t kSpan = 32;

std::vector<BlockSpan> MakeSpans(size_t blocks) {
  std::vector<BlockSpan> spans;
  for (size_t b = 0; b < blocks; ++b) {
    spans.push_back(BlockSpan{g_arena + b * kSpan, kSpan});
  }
  return spans;
}

ResidencyManager::Options TestOptions(FakePager* pager,
                                      uint64_t budget = 0) {
  ResidencyManager::Options options;
  options.budget_bytes = budget;
  options.background = false;  // jobs run at Drain(), deterministically
  options.pager = pager;
  return options;
}

TEST(BuildBlockSpans, ComputesPageAlignedSpansFromOffsets) {
  // 5 nodes in blocks of 2, 4-byte elements, 16-byte fake pages.
  const std::vector<uint64_t> offsets = {0, 2, 4, 4, 7, 9};
  alignas(16) std::array<std::byte, 48> adjacency{};
  const auto spans =
      BuildBlockSpans(offsets, {adjacency.data(), 36}, 4, 2, 16);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].data, adjacency.data());  // bytes [0,16) of [0,16)
  EXPECT_EQ(spans[0].size, 16u);
  EXPECT_EQ(spans[1].data, adjacency.data() + 16);  // bytes [16,28) widen
  EXPECT_EQ(spans[1].size, 16u);
  EXPECT_EQ(spans[2].data, adjacency.data() + 16);  // bytes [28,36) widen
  EXPECT_EQ(spans[2].size, 32u);
}

TEST(BuildBlockSpans, EdgelessBlocksGetEmptySpans) {
  const std::vector<uint64_t> offsets = {0, 0, 0, 5};
  alignas(16) std::array<std::byte, 32> adjacency{};
  const auto spans =
      BuildBlockSpans(offsets, {adjacency.data(), 20}, 4, 1, 16);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].size, 0u);
  EXPECT_EQ(spans[1].size, 0u);
  EXPECT_EQ(spans[2].size, 32u);  // bytes [0,20) widened to [0,32)
}

TEST(BuildBlockSpans, DegenerateInputsYieldNoSpans) {
  EXPECT_TRUE(BuildBlockSpans({}, {}, 4, 2, 16).empty());
  const std::vector<uint64_t> one = {0};
  EXPECT_TRUE(BuildBlockSpans(one, {}, 4, 2, 16).empty());
}

TEST(ResidencyManager, PrefetchQueuesUntilDrainInOrder) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(3), TestOptions(&pager));
  manager.Prefetch(2);
  manager.Prefetch(0);
  EXPECT_TRUE(pager.calls.empty());  // advice is queued, not issued
  EXPECT_EQ(manager.charged_bytes(), 2 * kSpan);  // but charged on admit
  manager.Drain();
  ASSERT_EQ(pager.calls.size(), 2u);
  EXPECT_EQ(pager.calls[0], (PagerCall{'W', g_arena + 2 * kSpan, kSpan}));
  EXPECT_EQ(pager.calls[1], (PagerCall{'W', g_arena, kSpan}));
  EXPECT_EQ(manager.stats().prefetches, 2u);
}

TEST(ResidencyManager, RepeatPrefetchOfAdmittedBlockIsIdempotent) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(2), TestOptions(&pager));
  manager.Prefetch(1);
  manager.Drain();
  manager.Prefetch(1);  // already in: refreshes LRU only
  manager.Drain();
  EXPECT_EQ(pager.Count('W'), 1u);
  EXPECT_EQ(manager.charged_bytes(), kSpan);
  EXPECT_EQ(manager.stats().prefetches, 1u);
}

TEST(ResidencyManager, BudgetNeverExceededAndEvictsLru) {
  FakePager pager;
  // Budget fits exactly two spans.
  ResidencyManager manager(MakeSpans(4), TestOptions(&pager, 2 * kSpan));
  manager.Prefetch(0);
  manager.Drain();
  manager.Prefetch(1);
  manager.Drain();
  EXPECT_LE(manager.charged_bytes(), 2 * kSpan);
  manager.Prefetch(2);  // over budget: block 0 is LRU, must go
  manager.Drain();
  EXPECT_LE(manager.charged_bytes(), 2 * kSpan);
  ASSERT_EQ(pager.Count('D'), 1u);
  EXPECT_EQ(pager.calls[2], (PagerCall{'D', g_arena, kSpan}));
  manager.Prefetch(1);  // touch 1: now 2 is LRU
  manager.Prefetch(3);
  manager.Drain();
  EXPECT_LE(manager.charged_bytes(), 2 * kSpan);
  const ResidencyManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.releases, 2u);
  EXPECT_EQ(stats.peak_charged, 2 * kSpan);
  EXPECT_EQ(stats.budget_overruns, 0u);
  // The second eviction dropped block 2, not the re-touched block 1.
  EXPECT_EQ(pager.calls.back().op, 'W');  // (3's advice is last)
  EXPECT_EQ(pager.calls[pager.calls.size() - 2],
            (PagerCall{'D', g_arena + 2 * kSpan, kSpan}));
}

TEST(ResidencyManager, DoubleReleaseIsANoOp) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(2), TestOptions(&pager));
  manager.Prefetch(0);
  manager.Drain();
  manager.Release(0);
  EXPECT_EQ(pager.Count('D'), 1u);
  EXPECT_EQ(manager.charged_bytes(), 0u);
  manager.Release(0);  // second release: nothing to drop, nothing billed
  EXPECT_EQ(pager.Count('D'), 1u);
  EXPECT_EQ(manager.charged_bytes(), 0u);
  EXPECT_EQ(manager.stats().releases, 1u);
}

TEST(ResidencyManager, ReleaseWhilePrefetchQueuedCancelsWithoutPagerCalls) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(2), TestOptions(&pager));
  manager.Prefetch(0);
  manager.Release(0);  // prefetch never ran: cancel, no advice either way
  manager.Drain();
  EXPECT_TRUE(pager.calls.empty());
  EXPECT_EQ(manager.charged_bytes(), 0u);
  const ResidencyManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.cancels, 1u);
  EXPECT_EQ(stats.releases, 0u);
}

TEST(ResidencyManager, PinnedBlocksSurviveEvictionAndRelease) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(4), TestOptions(&pager, 2 * kSpan));
  manager.Prefetch(0);
  manager.Drain();
  manager.Pin(0);  // the block being stepped
  manager.Prefetch(1);
  manager.Drain();
  manager.Release(0);  // pinned: not releasable
  EXPECT_EQ(pager.Count('D'), 0u);
  manager.Prefetch(2);  // over budget — LRU is pinned block 0, so 1 goes
  manager.Drain();
  ASSERT_EQ(pager.Count('D'), 1u);
  EXPECT_EQ(pager.calls[2], (PagerCall{'D', g_arena + kSpan, kSpan}));
  manager.Unpin(0);
  manager.Prefetch(3);  // now 0 is evictable again (and LRU)
  manager.Drain();
  EXPECT_EQ(pager.calls[pager.calls.size() - 2],
            (PagerCall{'D', g_arena, kSpan}));
  EXPECT_LE(manager.charged_bytes(), 2 * kSpan);
}

TEST(ResidencyManager, FullyPinnedSetForcesOverrunInsteadOfDeadlock) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(3), TestOptions(&pager, kSpan));
  manager.Pin(0);
  manager.Pin(1);  // pinned working set now exceeds the budget
  EXPECT_EQ(manager.charged_bytes(), 2 * kSpan);
  EXPECT_GE(manager.stats().budget_overruns, 1u);
  EXPECT_EQ(pager.Count('D'), 0u);
}

TEST(ResidencyManager, UnbudgetedManagerNeverEvicts) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(4), TestOptions(&pager));
  for (size_t b = 0; b < 4; ++b) manager.Prefetch(b);
  manager.Drain();
  EXPECT_EQ(pager.Count('W'), 4u);
  EXPECT_EQ(pager.Count('D'), 0u);
  EXPECT_EQ(manager.charged_bytes(), 4 * kSpan);
}

TEST(ResidencyManager, ResidentBytesQueriesTheSpanUnion) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(4), TestOptions(&pager));
  // The fake reports the queried size, so this checks the union geometry.
  EXPECT_EQ(manager.ResidentBytes(), 4 * kSpan);
}

TEST(ResidencyManager, BackgroundThreadDeliversAdviceEventually) {
  FakePager pager;  // only the manager's worker touches it before join
  ResidencyManager::Options options;
  options.pager = &pager;
  options.background = true;
  {
    ResidencyManager manager(MakeSpans(2), options);
    manager.Prefetch(0);
    manager.Prefetch(1);
    manager.Drain();  // callers may drain concurrently with the worker
  }  // destructor joins the worker
  EXPECT_EQ(pager.Count('W'), 2u);
}

TEST(ResidencyManager, OutOfRangeBlocksAreIgnored) {
  FakePager pager;
  ResidencyManager manager(MakeSpans(2), TestOptions(&pager));
  manager.Prefetch(9);
  manager.Pin(9);
  manager.Unpin(9);
  manager.Release(9);
  manager.Drain();
  EXPECT_TRUE(pager.calls.empty());
  EXPECT_EQ(manager.charged_bytes(), 0u);
}

}  // namespace
}  // namespace wnw::storage
