// Shared fixtures/helpers for the walknotwait test suite.
#pragma once

#include <cmath>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "random/rng.h"

namespace wnw::testing {

/// A tiny fixed graph used across tests:
///
///      0 - 1
///      | \ |
///      3   2 - 4
///
/// Degrees: 0:3, 1:2, 2:3, 3:1, 4:1. Diameter 3 (3 <-> 4).
inline Graph MakeHouseGraph() {
  GraphBuilder b(5);
  for (auto [u, v] : std::initializer_list<std::pair<NodeId, NodeId>>{
           {0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}}) {
    b.AddEdge(u, v);
  }
  return std::move(b).Build().value();
}

/// Deterministic small scale-free graph for statistical tests.
inline Graph MakeTestBA(NodeId n = 40, uint32_t m = 3, uint64_t seed = 7) {
  Rng rng(seed);
  return MakeBarabasiAlbert(n, m, rng).value();
}

/// Sum of a double vector.
inline double Sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

/// Materializes an (arena-backed) neighbor span for gtest comparisons.
inline std::vector<NodeId> ToVec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

}  // namespace wnw::testing
