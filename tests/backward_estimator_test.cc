// Unbiasedness of UNBIASED-ESTIMATE / WS-BW against exact matrix powers —
// the core correctness property of the paper's ESTIMATE component.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/backward_estimator.h"
#include "core/crawler.h"
#include "mcmc/distribution.h"
#include "mcmc/transition.h"
#include "mcmc/walker.h"
#include "test_util.h"

namespace wnw {
namespace {

// Monte-Carlo mean of EstimateOnce with a z-test-style tolerance derived
// from the empirical spread.
struct McResult {
  double mean = 0.0;
  double stderr_mean = 0.0;
};

McResult MonteCarloMean(const BackwardEstimator& estimator,
                        AccessInterface& access, NodeId u, int t, int reps,
                        uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0, sq = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double x = estimator.EstimateOnce(access, u, t, rng);
    sum += x;
    sq += x * x;
  }
  McResult out;
  out.mean = sum / reps;
  const double var = std::max(0.0, sq / reps - out.mean * out.mean);
  out.stderr_mean = std::sqrt(var / reps);
  return out;
}

class UnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(UnbiasednessTest, PlainEstimatorMatchesExactPt) {
  const auto [spec, t] = GetParam();
  const Graph g = testing::MakeTestBA(40, 3);
  auto design = MakeTransitionDesign(spec);
  const auto tm = TransitionMatrix::Build(g, *design);
  const NodeId start = 0;
  const auto exact = ExactStepDistribution(tm, start, t);
  AccessInterface access(&g);
  const BackwardEstimator estimator(design.get(), start);

  // Check a hub, a mid-degree node, and a leaf-ish node.
  std::vector<NodeId> probes{0, 5, 20, 39};
  for (NodeId u : probes) {
    const auto mc = MonteCarloMean(estimator, access, u, t, 60000,
                                   1000 + u + static_cast<uint64_t>(t));
    EXPECT_NEAR(mc.mean, exact[u], 5.0 * mc.stderr_mean + 1e-5)
        << spec << " t=" << t << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndLengths, UnbiasednessTest,
    ::testing::Combine(::testing::Values("srw", "mhrw", "lazy"),
                       ::testing::Values(1, 2, 4, 6)));

TEST(BackwardEstimatorTest, ExactAtTZero) {
  const Graph g = testing::MakeHouseGraph();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  const BackwardEstimator estimator(&srw, 2);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(estimator.EstimateOnce(access, 2, 0, rng), 1.0);
  EXPECT_DOUBLE_EQ(estimator.EstimateOnce(access, 0, 0, rng), 0.0);
}

TEST(BackwardEstimatorTest, SingleStepIsExactOnRegularGraph) {
  // On a k-regular graph the one-step SRW estimate is deterministic:
  // |N(u)|/|N(v)| = 1 and the indicator picks out the exact neighbor share.
  const Graph g = MakeRegularCirculant(10, 4).value();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  const BackwardEstimator estimator(&srw, 0);
  const auto tm = TransitionMatrix::Build(g, srw);
  const auto exact = ExactStepDistribution(tm, 0, 1);
  AccessInterface oracle(&g);
  const auto mc = MonteCarloMean(estimator, oracle, 1, 1, 40000, 7);
  EXPECT_NEAR(mc.mean, exact[1], 5.0 * mc.stderr_mean + 1e-4);
}

TEST(BackwardEstimatorTest, CrawlBallTerminationStaysUnbiased) {
  const Graph g = testing::MakeTestBA(40, 3);
  auto design = MakeTransitionDesign("srw");
  const auto tm = TransitionMatrix::Build(g, *design);
  const NodeId start = 3;
  const int t = 6;
  const auto exact = ExactStepDistribution(tm, start, t);
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, *design, start, 2);
  const BackwardEstimator estimator(design.get(), start, {}, &ball);
  for (NodeId u : {NodeId{1}, NodeId{10}, NodeId{30}}) {
    const auto mc = MonteCarloMean(estimator, access, u, t, 60000, 99 + u);
    EXPECT_NEAR(mc.mean, exact[u], 5.0 * mc.stderr_mean + 1e-5) << "u=" << u;
  }
}

TEST(BackwardEstimatorTest, WeightedSamplingStaysUnbiased) {
  const Graph g = testing::MakeTestBA(40, 3);
  auto design = MakeTransitionDesign("srw");
  const auto tm = TransitionMatrix::Build(g, *design);
  const NodeId start = 0;
  const int t = 5;
  const auto exact = ExactStepDistribution(tm, start, t);

  // Build genuine forward-walk history for WS-BW to lean on.
  AccessInterface access(&g);
  HitCountHistory history(t);
  Rng walk_rng(5);
  std::vector<NodeId> path;
  for (int w = 0; w < 2000; ++w) {
    Walk(access, *design, start, t, walk_rng, &path);
    history.RecordWalk(path);
  }

  BackwardWalkOptions opts;
  opts.weighted = true;
  opts.epsilon = 0.1;
  const BackwardEstimator estimator(design.get(), start, opts, nullptr,
                                    &history);
  for (NodeId u : {NodeId{2}, NodeId{12}, NodeId{33}}) {
    const auto mc = MonteCarloMean(estimator, access, u, t, 60000, 17 + u);
    EXPECT_NEAR(mc.mean, exact[u], 5.0 * mc.stderr_mean + 1e-5) << "u=" << u;
  }
}

TEST(BackwardEstimatorTest, FullHeuristicsStayUnbiased) {
  const Graph g = testing::MakeTestBA(40, 3);
  auto design = MakeTransitionDesign("srw");
  const auto tm = TransitionMatrix::Build(g, *design);
  const NodeId start = 7;
  const int t = 6;
  const auto exact = ExactStepDistribution(tm, start, t);

  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, *design, start, 2);
  HitCountHistory history(t);
  Rng walk_rng(6);
  std::vector<NodeId> path;
  for (int w = 0; w < 2000; ++w) {
    Walk(access, *design, start, t, walk_rng, &path);
    history.RecordWalk(path);
  }
  BackwardWalkOptions opts;
  opts.weighted = true;
  const BackwardEstimator estimator(design.get(), start, opts, &ball,
                                    &history);
  for (NodeId u : {NodeId{0}, NodeId{15}, NodeId{39}}) {
    const auto mc = MonteCarloMean(estimator, access, u, t, 60000, 23 + u);
    EXPECT_NEAR(mc.mean, exact[u], 5.0 * mc.stderr_mean + 1e-5) << "u=" << u;
  }
}

TEST(BackwardEstimatorTest, VarianceReductionHelps) {
  // The paper's claim behind Figure 9: crawl + weighted sampling reduce the
  // per-walk estimator variance on hub-adjacent nodes.
  const Graph g = testing::MakeTestBA(60, 3);
  auto design = MakeTransitionDesign("srw");
  const NodeId start = 0;
  const int t = 8;
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, *design, start, 2);
  HitCountHistory history(t);
  Rng walk_rng(9);
  std::vector<NodeId> path;
  for (int w = 0; w < 3000; ++w) {
    Walk(access, *design, start, t, walk_rng, &path);
    history.RecordWalk(path);
  }
  const BackwardEstimator plain(design.get(), start);
  BackwardWalkOptions wopts;
  wopts.weighted = true;
  const BackwardEstimator full(design.get(), start, wopts, &ball, &history);

  auto variance_of = [&](const BackwardEstimator& e, NodeId u,
                         uint64_t seed) {
    Rng rng(seed);
    double sum = 0, sq = 0;
    constexpr int kReps = 30000;
    for (int r = 0; r < kReps; ++r) {
      const double x = e.EstimateOnce(access, u, t, rng);
      sum += x;
      sq += x * x;
    }
    const double mean = sum / kReps;
    return sq / kReps - mean * mean;
  };
  // Compare summed variance across a few probe nodes.
  double var_plain = 0, var_full = 0;
  for (NodeId u : {NodeId{1}, NodeId{2}, NodeId{10}}) {
    var_plain += variance_of(plain, u, 100 + u);
    var_full += variance_of(full, u, 200 + u);
  }
  EXPECT_LT(var_full, var_plain);
}

TEST(HitCountHistoryTest, CountsPerStep) {
  HitCountHistory h(3);
  const std::vector<NodeId> path1{0, 1, 2, 3};
  const std::vector<NodeId> path2{0, 1, 1, 3};
  h.RecordWalk(path1);
  h.RecordWalk(path2);
  EXPECT_EQ(h.num_walks(), 2u);
  EXPECT_EQ(h.Count(0, 0), 2u);
  EXPECT_EQ(h.Count(1, 1), 2u);
  EXPECT_EQ(h.Count(1, 2), 1u);
  EXPECT_EQ(h.Count(2, 2), 1u);
  EXPECT_EQ(h.Count(3, 3), 2u);
  EXPECT_EQ(h.Count(9, 1), 0u);
}

}  // namespace
}  // namespace wnw
