#include <gtest/gtest.h>

#include <memory>

#include "core/crawler.h"
#include "mcmc/distribution.h"
#include "mcmc/transition.h"
#include "test_util.h"

namespace wnw {
namespace {

class CrawlBallExactnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrawlBallExactnessTest, MatchesMatrixPowersInsideBall) {
  const Graph g = testing::MakeTestBA(60, 3);
  auto design = MakeTransitionDesign(GetParam());
  const auto tm = TransitionMatrix::Build(g, *design);
  for (NodeId start : {NodeId{0}, NodeId{17}, NodeId{59}}) {
    for (int h : {0, 1, 2, 3}) {
      AccessInterface access(&g);
      const CrawlBall ball = CrawlBall::Crawl(access, *design, start, h);
      for (int s = 0; s <= h; ++s) {
        const auto exact = ExactStepDistribution(tm, start, s);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          EXPECT_NEAR(ball.ExactProb(v, s), exact[v], 1e-12)
              << GetParam() << " start=" << start << " h=" << h << " s=" << s
              << " v=" << v;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, CrawlBallExactnessTest,
                         ::testing::Values("srw", "mhrw", "lazy"));

TEST(CrawlBallTest, RadiusZeroIsPointMass) {
  const Graph g = testing::MakeHouseGraph();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, srw, 2, 0);
  EXPECT_EQ(ball.ball_size(), 1u);
  EXPECT_DOUBLE_EQ(ball.ExactProb(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(ball.ExactProb(0, 0), 0.0);
}

TEST(CrawlBallTest, ContainsExactlyTheBall) {
  const Graph g = testing::MakeHouseGraph();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, srw, 3, 2);
  // Distances from 3: 0:1, 1:2, 2:2, 4:3.
  EXPECT_TRUE(ball.Contains(3));
  EXPECT_TRUE(ball.Contains(0));
  EXPECT_TRUE(ball.Contains(1));
  EXPECT_TRUE(ball.Contains(2));
  EXPECT_FALSE(ball.Contains(4));
  EXPECT_EQ(ball.DistanceTo(0), 1);
  EXPECT_EQ(ball.DistanceTo(2), 2);
}

TEST(CrawlBallTest, ProbMassSumsToOneInsideRadius) {
  const Graph g = testing::MakeTestBA(50, 3);
  MetropolisHastingsWalk mhrw;
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, mhrw, 5, 3);
  for (int s = 0; s <= 3; ++s) {
    double total = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) total += ball.ExactProb(v, s);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(CrawlBallTest, BillsQueries) {
  const Graph g = testing::MakeTestBA(50, 3);
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  CrawlBall::Crawl(access, srw, 0, 2);
  // Crawling a radius-2 ball must touch every ball node.
  EXPECT_GT(access.query_cost(), 1u);
}

TEST(CrawlBallTest, IsolatedStart) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  const Graph g = std::move(b).Build().value();
  SimpleRandomWalk srw;
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, srw, 0, 2);
  EXPECT_EQ(ball.ball_size(), 1u);
  // SRW on an isolated node self-loops with probability 1.
  EXPECT_DOUBLE_EQ(ball.ExactProb(0, 2), 1.0);
}

}  // namespace
}  // namespace wnw
