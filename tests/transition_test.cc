#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "access/access_interface.h"
#include "mcmc/distribution.h"
#include "mcmc/transition.h"
#include "mcmc/walker.h"
#include "test_util.h"

namespace wnw {
namespace {

// Empirically verifies that design.Step matches design.TransitionProb by
// stepping many times from each node and chi-square-eyeballing frequencies.
void ExpectStepMatchesProb(const Graph& g, const TransitionDesign& design,
                           uint64_t seed, double tol = 0.02) {
  AccessInterface access(&g);
  Rng rng(seed);
  constexpr int kDraws = 40000;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<int> counts(g.num_nodes(), 0);
    for (int i = 0; i < kDraws; ++i) counts[design.Step(access, u, rng)]++;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double expect = design.TransitionProb(access, u, v);
      EXPECT_NEAR(static_cast<double>(counts[v]) / kDraws, expect, tol)
          << design.name() << " " << u << "->" << v;
    }
  }
}

// Transition rows must be probability distributions.
void ExpectRowsStochastic(const Graph& g, const TransitionDesign& design) {
  AccessInterface access(&g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double row = design.TransitionProb(access, u, u);
    for (NodeId v : g.Neighbors(u)) {
      const double p = design.TransitionProb(access, u, v);
      EXPECT_GE(p, 0.0);
      row += p;
    }
    EXPECT_NEAR(row, 1.0, 1e-12) << design.name() << " row " << u;
  }
}

TEST(SrwTest, RowsStochastic) {
  SimpleRandomWalk srw;
  ExpectRowsStochastic(testing::MakeHouseGraph(), srw);
  ExpectRowsStochastic(testing::MakeTestBA(30, 2), srw);
}

TEST(SrwTest, UniformOverNeighbors) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  EXPECT_DOUBLE_EQ(srw.TransitionProb(access, 0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(srw.TransitionProb(access, 3, 0), 1.0);
  EXPECT_DOUBLE_EQ(srw.TransitionProb(access, 0, 4), 0.0);  // non-neighbor
  EXPECT_DOUBLE_EQ(srw.TransitionProb(access, 0, 0), 0.0);  // no self-loop
}

TEST(SrwTest, StepMatchesProb) {
  SimpleRandomWalk srw;
  ExpectStepMatchesProb(testing::MakeHouseGraph(), srw, 17);
}

TEST(SrwTest, StationaryWeightIsDegree) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  EXPECT_DOUBLE_EQ(srw.StationaryWeight(access, 0), 3.0);
  EXPECT_DOUBLE_EQ(srw.StationaryWeight(access, 3), 1.0);
}

TEST(LazyTest, SelfLoopProbability) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  LazyRandomWalk lazy(0.3);
  EXPECT_DOUBLE_EQ(lazy.TransitionProb(access, 0, 0), 0.3);
  EXPECT_DOUBLE_EQ(lazy.TransitionProb(access, 0, 1), 0.7 / 3.0);
  EXPECT_TRUE(lazy.has_self_loops());
  ExpectRowsStochastic(g, lazy);
}

TEST(LazyTest, StepMatchesProb) {
  LazyRandomWalk lazy(0.5);
  ExpectStepMatchesProb(testing::MakeHouseGraph(), lazy, 19);
}

TEST(MhrwTest, RowsStochastic) {
  MetropolisHastingsWalk mhrw;
  ExpectRowsStochastic(testing::MakeHouseGraph(), mhrw);
  ExpectRowsStochastic(testing::MakeTestBA(30, 2), mhrw);
}

TEST(MhrwTest, SymmetricTransitions) {
  // MHRW targeting uniform is a symmetric chain: T(u,v) = T(v,u).
  const Graph g = testing::MakeTestBA(30, 2);
  AccessInterface access(&g);
  MetropolisHastingsWalk mhrw;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      EXPECT_NEAR(mhrw.TransitionProb(access, u, v),
                  mhrw.TransitionProb(access, v, u), 1e-14);
    }
  }
}

TEST(MhrwTest, Definition2Values) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  MetropolisHastingsWalk mhrw;
  // T(0,3): deg(0)=3, deg(3)=1 -> (1/3)*min(1, 3/1) = 1/3.
  EXPECT_DOUBLE_EQ(mhrw.TransitionProb(access, 0, 3), 1.0 / 3.0);
  // T(3,0): (1/1)*min(1, 1/3) = 1/3.
  EXPECT_DOUBLE_EQ(mhrw.TransitionProb(access, 3, 0), 1.0 / 3.0);
  // T(3,3): 1 - 1/3 = 2/3.
  EXPECT_DOUBLE_EQ(mhrw.TransitionProb(access, 3, 3), 2.0 / 3.0);
}

TEST(MhrwTest, StepMatchesProb) {
  MetropolisHastingsWalk mhrw;
  ExpectStepMatchesProb(testing::MakeHouseGraph(), mhrw, 23);
}

TEST(MhrwTest, UniformStationary) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  MetropolisHastingsWalk mhrw;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(mhrw.StationaryWeight(access, u), 1.0);
  }
}

TEST(MaxDegreeTest, RowsStochastic) {
  const Graph g = testing::MakeHouseGraph();
  MaxDegreeWalk walk(g.max_degree());
  ExpectRowsStochastic(g, walk);
}

TEST(MaxDegreeTest, StepMatchesProb) {
  const Graph g = testing::MakeHouseGraph();
  MaxDegreeWalk walk(4);
  ExpectStepMatchesProb(g, walk, 29);
}

TEST(MaxDegreeTest, UniformStationaryByDetailedBalance) {
  // T(u,v) = T(v,u) = 1/d_bound for every edge -> uniform is stationary.
  const Graph g = testing::MakeTestBA(25, 2);
  AccessInterface access(&g);
  MaxDegreeWalk walk(g.max_degree() + 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      EXPECT_DOUBLE_EQ(walk.TransitionProb(access, u, v),
                       walk.TransitionProb(access, v, u));
    }
  }
}

TEST(IsolatedNodeTest, AllDesignsSelfLoop) {
  GraphBuilder b(2);
  const Graph g = std::move(b).Build().value();
  AccessInterface access(&g);
  Rng rng(1);
  SimpleRandomWalk srw;
  MetropolisHastingsWalk mhrw;
  LazyRandomWalk lazy(0.5);
  EXPECT_EQ(srw.Step(access, 0, rng), 0u);
  EXPECT_EQ(mhrw.Step(access, 0, rng), 0u);
  EXPECT_EQ(lazy.Step(access, 0, rng), 0u);
  EXPECT_DOUBLE_EQ(srw.TransitionProb(access, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(mhrw.TransitionProb(access, 0, 0), 1.0);
}

TEST(FactoryTest, KnownSpecs) {
  EXPECT_EQ(MakeTransitionDesign("srw")->name(), "SRW");
  EXPECT_EQ(MakeTransitionDesign("mhrw")->name(), "MHRW");
  EXPECT_EQ(MakeTransitionDesign("lazy")->name(), "LazySRW");
  auto maxdeg = MakeTransitionDesign("maxdeg:12");
  ASSERT_NE(maxdeg, nullptr);
  EXPECT_EQ(maxdeg->name(), "MaxDegreeWalk");
}

TEST(FactoryTest, UnknownSpecsReturnNull) {
  EXPECT_EQ(MakeTransitionDesign("bogus"), nullptr);
  EXPECT_EQ(MakeTransitionDesign("maxdeg:notanumber"), nullptr);
  EXPECT_EQ(MakeTransitionDesign("maxdeg:0"), nullptr);
}

TEST(WalkTest, PathHasCorrectLengthAndAdjacency) {
  const Graph g = testing::MakeTestBA(40, 3);
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  Rng rng(31);
  std::vector<NodeId> path;
  const NodeId end = Walk(access, srw, 0, 25, rng, &path);
  ASSERT_EQ(path.size(), 26u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), end);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(path[i], path[i + 1]));
  }
}

TEST(WalkTest, ZeroStepsStaysPut) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  Rng rng(1);
  std::vector<NodeId> path;
  EXPECT_EQ(Walk(access, srw, 2, 0, rng, &path), 2u);
  EXPECT_EQ(path, (std::vector<NodeId>{2}));
}

TEST(WalkTest, ObservedRecordsTheta) {
  const Graph g = testing::MakeHouseGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  Rng rng(2);
  std::vector<double> obs;
  WalkObserved(
      access, srw, 0, 10, rng,
      [&](NodeId u) { return static_cast<double>(g.Degree(u)); }, &obs);
  ASSERT_EQ(obs.size(), 11u);
  EXPECT_DOUBLE_EQ(obs[0], 3.0);  // degree of node 0
}

TEST(WalkTest, MhrwStepsBillDegreesQueries) {
  // MHRW needs the proposed neighbor's degree, so it touches more nodes than
  // its trajectory alone: cost(MHRW walk) >= cost(path nodes).
  const Graph g = testing::MakeTestBA(60, 3);
  AccessInterface access(&g);
  MetropolisHastingsWalk mhrw;
  Rng rng(3);
  Walk(access, mhrw, 0, 50, rng);
  EXPECT_GT(access.query_cost(), 0u);
  EXPECT_GE(access.total_queries(), 50u);
}

}  // namespace
}  // namespace wnw
