// The storage layer: Buffer/Array substrate, the snapshot container, graph
// and sharded-graph round trips through mmap, and the loader's refusal to
// crash on hostile files (corrupt, truncated, version-mismatched, wrong
// kind, wrong magic).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "access/query_cache.h"
#include "graph/builder.h"
#include "graph/sharded_graph.h"
#include "storage/buffer.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace wnw {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wnw_storage_test_" + name;
}

// Byte surgery for the corruption tests.
std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BufferTest, OwnAdoptsVectorWithoutMapping) {
  std::vector<uint32_t> values = {1, 2, 3};
  const storage::Buffer buffer = storage::Buffer::Own(std::move(values));
  EXPECT_EQ(buffer.size(), 3 * sizeof(uint32_t));
  EXPECT_FALSE(buffer.mapped());
  auto array = storage::Array<uint32_t>::FromBuffer(buffer);
  ASSERT_TRUE(array.ok());
  EXPECT_EQ((*array)[1], 2u);
}

TEST(BufferTest, ArrayRejectsRaggedAndForeignSizes) {
  std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};  // 5 bytes
  const storage::Buffer buffer = storage::Buffer::Own(std::move(bytes));
  EXPECT_FALSE(storage::Array<uint32_t>::FromBuffer(buffer).ok());
}

TEST(MappedFileTest, MissingFileIsNotFound) {
  auto file = storage::MappedFile::Open(TempPath("nonexistent.bin"));
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, GraphRoundTripsThroughMmap) {
  const Graph g = testing::MakeTestBA(300, 4);
  std::vector<uint64_t> originals(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) originals[u] = 1000000u + u * 7u;

  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(
      WriteGraphSnapshot(g, path, {.original_ids = originals}).ok());

  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& m = loaded->graph;
  EXPECT_TRUE(m.storage_mapped());
  EXPECT_FALSE(g.storage_mapped());
  ASSERT_EQ(m.num_nodes(), g.num_nodes());
  EXPECT_EQ(m.num_edges(), g.num_edges());
  EXPECT_EQ(m.max_degree(), g.max_degree());
  EXPECT_EQ(m.min_degree(), g.min_degree());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(testing::ToVec(m.Neighbors(u)), testing::ToVec(g.Neighbors(u)))
        << "node " << u;
  }
  EXPECT_EQ(loaded->original_id, originals);
  EXPECT_EQ(loaded->sharded, nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, OptionalSectionsAreOptional) {
  const Graph g = testing::MakeHouseGraph();
  const std::string path = TempPath("minimal.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->original_id.empty());
  EXPECT_EQ(loaded->sharded, nullptr);
  EXPECT_EQ(loaded->graph.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  const Graph g = GraphBuilder(0).Build().value();
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.num_nodes(), 0u);
  EXPECT_EQ(loaded->graph.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ShardedGraphRoundTripsThroughMmap) {
  const Graph g = testing::MakeTestBA(200, 3);
  for (ShardPartition partition :
       {ShardPartition::kModulo, ShardPartition::kRange,
        ShardPartition::kDegreeBalanced}) {
    const ShardedGraph sharded =
        ShardedGraph::FromGraph(g, 4, partition).value();
    const std::string path = TempPath("sharded.snap");
    ASSERT_TRUE(WriteGraphSnapshot(g, path, {.sharded = &sharded}).ok());

    auto loaded = LoadGraphSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_NE(loaded->sharded, nullptr);
    const ShardedGraph& m = *loaded->sharded;
    EXPECT_EQ(m.num_shards(), 4);
    EXPECT_EQ(m.partition(), partition);
    ASSERT_EQ(m.num_nodes(), g.num_nodes());
    EXPECT_EQ(m.num_edges(), g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(m.ShardOf(u), sharded.ShardOf(u));
      EXPECT_EQ(m.LocalIndex(u), sharded.LocalIndex(u));
      EXPECT_EQ(testing::ToVec(m.Neighbors(u)),
                testing::ToVec(g.Neighbors(u)));
    }
    // The shards themselves are file-backed, and the flatten identity
    // survives the disk trip.
    EXPECT_TRUE(m.shard(0).adjacency.mapped());
    const Graph flattened = m.Flatten();
    EXPECT_EQ(flattened.num_edges(), g.num_edges());
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, CorruptPayloadIsAStatusNotACrash) {
  const Graph g = testing::MakeTestBA(100, 3);
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-payload
  WriteAll(path, bytes);

  auto loaded = LoadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileIsAStatusNotACrash) {
  const Graph g = testing::MakeTestBA(100, 3);
  const std::string path = TempPath("truncated.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(bytes.size() / 2);
  WriteAll(path, bytes);

  auto loaded = LoadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, VersionMismatchIsASpecificStatus) {
  const Graph g = testing::MakeHouseGraph();
  const std::string path = TempPath("version.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Header layout: magic[8], endian u32, version u32 at offset 12.
  bytes[12] = 99;
  WriteAll(path, bytes);

  auto loaded = LoadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, ForeignFilesAreRejectedByMagic) {
  const std::string path = TempPath("not_a_snapshot.txt");
  {
    std::ofstream out(path);
    out << "# this is an edge list, not a snapshot\n0 1\n1 2\n"
        << std::string(64, 'x');
  }
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadGraphSnapshot(TempPath("never_written.snap")).status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, WrongFileKindIsRejected) {
  // A query-cache file is a valid container of the WRONG kind for the
  // graph loader (and vice versa) — kind checks beat section lookups.
  QueryCache cache;
  const std::vector<NodeId> nbrs = {1, 2, 3};
  cache.Insert(0, nbrs);
  const std::string path = TempPath("cache_as_graph.wnwcache");
  ASSERT_TRUE(cache.Save(path).ok());

  auto as_graph = LoadGraphSnapshot(path);
  ASSERT_FALSE(as_graph.ok());
  EXPECT_EQ(as_graph.status().code(), StatusCode::kIOError);
  EXPECT_NE(as_graph.status().message().find("query cache"),
            std::string::npos)
      << as_graph.status().ToString();

  const Graph g = testing::MakeHouseGraph();
  const std::string graph_path = TempPath("graph_as_cache.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, graph_path).ok());
  QueryCache other;
  EXPECT_EQ(other.Load(graph_path).code(), StatusCode::kIOError);
  std::remove(path.c_str());
  std::remove(graph_path.c_str());
}

TEST(SnapshotInfoTest, DescribesContents) {
  const Graph g = testing::MakeTestBA(150, 3);
  const ShardedGraph sharded =
      ShardedGraph::FromGraph(g, 3, ShardPartition::kDegreeBalanced).value();
  std::vector<uint64_t> originals(g.num_nodes(), 5);
  const std::string path = TempPath("info.snap");
  ASSERT_TRUE(WriteGraphSnapshot(
                  g, path, {.original_ids = originals, .sharded = &sharded})
                  .ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_nodes, g.num_nodes());
  EXPECT_EQ(info->num_edges, g.num_edges());
  EXPECT_EQ(info->max_degree, g.max_degree());
  EXPECT_TRUE(info->has_original_ids);
  EXPECT_EQ(info->num_shards, 3);
  EXPECT_EQ(info->partition, ShardPartition::kDegreeBalanced);
  EXPECT_GT(info->file_bytes, 0u);
  std::remove(path.c_str());
}

TEST(FromCsrTest, RejectsMalformedShapes) {
  // offsets not ascending
  EXPECT_FALSE(Graph::FromCsr(storage::Array<uint64_t>({0, 2, 1}),
                              storage::Array<NodeId>({1, 0}))
                   .ok());
  // last offset disagrees with adjacency length
  EXPECT_FALSE(Graph::FromCsr(storage::Array<uint64_t>({0, 1, 2}),
                              storage::Array<NodeId>({1}))
                   .ok());
  // neighbor id out of range
  EXPECT_FALSE(Graph::FromCsr(storage::Array<uint64_t>({0, 1, 2}),
                              storage::Array<NodeId>({7, 0}))
                   .ok());
  // An early offset pointing far past the adjacency array, with a later
  // descending pair "fixing" the total: must be rejected WITHOUT reading
  // adjacency[0..500) (ASan guards the would-be overflow).
  EXPECT_FALSE(Graph::FromCsr(storage::Array<uint64_t>({0, 500, 2}),
                              storage::Array<NodeId>({1, 0}))
                   .ok());
  // a valid tiny CSR round-trips and recomputes its stats
  auto g = Graph::FromCsr(storage::Array<uint64_t>({0, 1, 2}),
                          storage::Array<NodeId>({1, 0}));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(g->max_degree(), 1u);
}

TEST(SnapshotTest, ShardSectionsDisagreeingWithFlatCsrAreRejected) {
  // The flat CSR and the per-shard sections are independent bytes in the
  // file. Shard a DIFFERENT graph with the same node count: the writer's
  // node-count check passes, so only the loader's cross-check can catch
  // the divergence — without it, sharded and unsharded origins would
  // serve different samples from one file.
  const Graph flat = testing::MakeTestBA(80, 3, /*seed=*/1);
  const Graph other = testing::MakeTestBA(80, 3, /*seed=*/2);
  const ShardedGraph divergent = ShardedGraph::FromGraph(other, 2).value();
  const std::string path = TempPath("divergent.snap");
  ASSERT_TRUE(WriteGraphSnapshot(flat, path, {.sharded = &divergent}).ok());

  auto loaded = LoadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("disagree"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, SuccessLeavesNoTempFile) {
  const Graph g = testing::MakeTestBA(200, 4);
  const std::string path = TempPath("atomic_ok.snap");
  ASSERT_TRUE(WriteGraphSnapshot(g, path, {}).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open()) << "writer left " << path << ".tmp behind";
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, FailedWriteLeavesExistingSnapshotUntouched) {
  const Graph g = testing::MakeTestBA(200, 4);
  // An unwritable target (a path through a regular file) must fail cleanly
  // without touching anything at the destination name.
  const std::string blocker = TempPath("atomic_blocker");
  WriteAll(blocker, {'x'});
  const std::string bad_path = blocker + "/sub/out.snap";
  const Status written = WriteGraphSnapshot(g, bad_path, {});
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIOError);
  EXPECT_FALSE(std::ifstream(bad_path + ".tmp").is_open());
  std::remove(blocker.c_str());
}

TEST(AtomicWriteTest, RewriteReplacesAtomically) {
  const Graph small = testing::MakeTestBA(100, 3);
  const Graph big = testing::MakeTestBA(400, 5);
  const std::string path = TempPath("atomic_replace.snap");
  ASSERT_TRUE(WriteGraphSnapshot(small, path, {}).ok());
  ASSERT_TRUE(WriteGraphSnapshot(big, path, {}).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.num_nodes(), big.num_nodes());
  EXPECT_EQ(loaded->graph.num_edges(), big.num_edges());
  std::remove(path.c_str());
}

#if defined(__unix__) || defined(__APPLE__)
// The crash-consistency promise: a writer killed at ANY point leaves the
// destination either absent or a complete, checksum-valid snapshot — never
// truncated garbage. A child process writes in a loop and is SIGKILLed at
// scattered points; the assertion is timing-independent.
TEST(AtomicWriteTest, KillMidWriteNeverLeavesTornSnapshot) {
  const Graph g = testing::MakeTestBA(20000, 8);  // big enough to interrupt
  const std::string path = TempPath("atomic_kill.snap");
  for (int round = 0; round < 6; ++round) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      for (;;) {
        if (!WriteGraphSnapshot(g, path, {}).ok()) _exit(1);
      }
    }
    ::usleep(static_cast<useconds_t>(500 + round * 2300));
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ::waitpid(child, &wstatus, 0);

    auto loaded = LoadGraphSnapshot(path);
    if (loaded.ok()) {
      EXPECT_EQ(loaded->graph.num_nodes(), g.num_nodes());
      EXPECT_EQ(loaded->graph.num_edges(), g.num_edges());
    } else {
      // The only acceptable failure is "no snapshot yet" — a torn or
      // truncated file at `path` is exactly what the tmp+rename protocol
      // forbids.
      EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
          << "round " << round << ": " << loaded.status().ToString();
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}
#endif

TEST(FromPartsTest, RejectsOverlapAndGaps) {
  const Graph g = testing::MakeHouseGraph();
  const ShardedGraph good = ShardedGraph::FromGraph(g, 2).value();
  // Duplicate ownership: shard 0's parts used for both shards.
  std::vector<ShardedGraph::Shard> overlap = {good.shard(0), good.shard(0)};
  EXPECT_FALSE(ShardedGraph::FromParts(ShardPartition::kModulo,
                                       std::move(overlap), g.num_nodes(),
                                       g.num_edges())
                   .ok());
  // Missing nodes: only shard 0.
  std::vector<ShardedGraph::Shard> gap = {good.shard(0)};
  EXPECT_FALSE(ShardedGraph::FromParts(ShardPartition::kModulo,
                                       std::move(gap), g.num_nodes(),
                                       g.num_edges())
                   .ok());
}

}  // namespace
}  // namespace wnw
