// The cross-session QueryCache: hit/miss accounting, cache-aware cost
// billing in AccessInterface, and thread-safety under genuinely concurrent
// sampling sessions (the configuration the harness runs parallel trials
// in). The sanitizer CI job makes the concurrency tests load-bearing.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstddef>

#include "access/access_interface.h"
#include "access/query_cache.h"
#include "core/session.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/parallel.h"

namespace wnw {
namespace {

TEST(QueryCacheTest, LookupInsertAndStats) {
  QueryCache cache;
  std::vector<NodeId> out;
  EXPECT_FALSE(cache.Lookup(7, &out));
  EXPECT_EQ(cache.misses(), 1u);
  const std::vector<NodeId> list = {1, 2, 3};
  cache.Insert(7, list);
  EXPECT_TRUE(cache.Contains(7));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out, list);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 0.5, 1e-12);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(QueryCacheTest, FirstWriterWins) {
  QueryCache cache;
  cache.Insert(3, std::vector<NodeId>{1, 2});
  cache.Insert(3, std::vector<NodeId>{9});
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Lookup(3, &out));
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2}));
}

TEST(QueryCacheTest, UnboundedByDefault) {
  QueryCache cache(4);
  for (NodeId u = 0; u < 5000; ++u) cache.Insert(u, std::vector<NodeId>{u});
  EXPECT_EQ(cache.size(), 5000u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.max_entries(), 0u);
}

TEST(QueryCacheTest, CapEvictsLeastRecentlyUsedPerShard) {
  // One shard so LRU order is globally observable.
  QueryCache cache(1, 3);
  EXPECT_EQ(cache.max_entries(), 3u);
  cache.Insert(0, std::vector<NodeId>{0});
  cache.Insert(1, std::vector<NodeId>{1});
  cache.Insert(2, std::vector<NodeId>{2});
  EXPECT_EQ(cache.evictions(), 0u);
  // Touch 0: it becomes most-recently-used, so 1 is now the coldest.
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Lookup(0, &out));
  cache.Insert(3, std::vector<NodeId>{3});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Contains(0));   // survived via recency
  EXPECT_FALSE(cache.Contains(1));  // evicted
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(QueryCacheTest, ContainsDoesNotRefreshRecency) {
  QueryCache cache(1, 2);
  cache.Insert(0, std::vector<NodeId>{0});
  cache.Insert(1, std::vector<NodeId>{1});
  // Peeking at 0 must NOT save it: 0 is still the coldest entry.
  EXPECT_TRUE(cache.Contains(0));
  cache.Insert(2, std::vector<NodeId>{2});
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(QueryCacheTest, CappedCacheStaysBoundedUnderConcurrentSessions) {
  const Graph g = testing::MakeTestBA(400, 3, 29);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  constexpr size_t kShards = 4;
  constexpr size_t kMax = 64;
  auto cache = std::make_shared<QueryCache>(kShards, kMax);

  ParallelFor(
      8,
      [&](size_t i) {
        AccessInterface access(backend, cache);
        Rng rng(Mix64(7000 + i));
        NodeId cur = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
        for (int step = 0; step < 1500; ++step) {
          const NodeId next = access.SampleNeighbor(cur, rng);
          if (next == kInvalidNode) break;
          cur = next;
        }
      },
      8);

  // The per-shard cap bounds the total at max(1, kMax/shards) * shards.
  EXPECT_LE(cache->size(), (kMax / kShards) * kShards);
  EXPECT_GT(cache->evictions(), 0u);
  // Surviving entries are intact (no torn lists under eviction churn).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> out;
    if (!cache->Lookup(u, &out)) continue;
    const auto truth = g.Neighbors(u);
    EXPECT_EQ(out, std::vector<NodeId>(truth.begin(), truth.end())) << u;
  }
}

TEST(QueryCacheTest, SecondSessionRidesOnFirstSessionsQueries) {
  const Graph g = testing::MakeTestBA(80, 3);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  auto cache = std::make_shared<QueryCache>();

  AccessInterface first(backend, cache);
  for (NodeId u = 0; u < 40; ++u) first.Neighbors(u);
  EXPECT_EQ(first.query_cost(), 40u);
  EXPECT_EQ(first.meter().shared_cache_hits, 0u);

  AccessInterface second(backend, cache);
  for (NodeId u = 0; u < 40; ++u) second.Neighbors(u);
  // Every node came out of the shared cache: zero distinct-node cost.
  EXPECT_EQ(second.query_cost(), 0u);
  EXPECT_EQ(second.meter().backend_fetches, 0u);
  EXPECT_EQ(second.meter().shared_cache_hits, 40u);
  EXPECT_EQ(second.total_queries(), 40u);
  // Responses are identical to the backend's.
  auto direct = backend->FetchNeighbors(5);
  const auto via_cache = second.Neighbors(5);
  EXPECT_EQ(std::vector<NodeId>(via_cache.begin(), via_cache.end()),
            direct->TakeNeighbors());
}

TEST(QueryCacheTest, ConcurrentSessionsShareOneCacheSafely) {
  const Graph g = testing::MakeTestBA(300, 3, 13);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  auto cache = std::make_shared<QueryCache>(4);

  constexpr int kSessions = 8;
  std::vector<uint64_t> costs(kSessions, 0);
  ParallelFor(
      kSessions,
      [&](size_t i) {
        AccessInterface access(backend, cache);
        Rng rng(Mix64(1000 + i));
        NodeId cur = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
        for (int step = 0; step < 2000; ++step) {
          const NodeId next = access.SampleNeighbor(cur, rng);
          if (next == kInvalidNode) break;
          cur = next;
        }
        costs[i] = access.query_cost();
      },
      kSessions);

  // Every cached list must match the graph exactly — a torn or corrupted
  // entry would surface here (and under ASan in CI).
  uint64_t cached = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> out;
    if (!cache->Lookup(u, &out)) continue;
    ++cached;
    const auto truth = g.Neighbors(u);
    EXPECT_EQ(out, std::vector<NodeId>(truth.begin(), truth.end())) << u;
  }
  EXPECT_GT(cached, 0u);
  // Every cached node was fetched (and billed) by at least one session;
  // concurrent duplicate fetches of a node can only add to the bill.
  uint64_t total_cost = 0;
  for (uint64_t c : costs) total_cost += c;
  EXPECT_GE(total_cost, cached);
}

// --- persistence (Save/Load/AttachFile; format details in storage tests) ----

std::string CacheTempPath(const std::string& name) {
  return ::testing::TempDir() + "wnw_query_cache_test_" + name;
}

TEST(QueryCachePersistenceTest, SaveLoadRoundTripsEntries) {
  QueryCache cache;
  for (NodeId u = 0; u < 50; ++u) {
    const std::vector<NodeId> list = {u, u + 1, u + 2};
    cache.Insert(u, list);
  }
  const std::string path = CacheTempPath("roundtrip.wnwcache");
  ASSERT_TRUE(cache.Save(path).ok());

  QueryCache reloaded(/*num_shards=*/4);  // different shard count is fine
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), 50u);
  for (NodeId u = 0; u < 50; ++u) {
    std::vector<NodeId> out;
    ASSERT_TRUE(reloaded.Lookup(u, &out)) << u;
    EXPECT_EQ(out, (std::vector<NodeId>{u, u + 1, u + 2}));
  }
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, LruRecencySurvivesTheDisk) {
  // Single shard so recency is a single total order. Hotness at save time:
  // 1 (looked up last), then 3, then 2 (coldest).
  QueryCache cache(/*num_shards=*/1);
  const std::vector<NodeId> list = {9};
  cache.Insert(1, list);
  cache.Insert(2, list);
  cache.Insert(3, list);
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  const std::string path = CacheTempPath("lru.wnwcache");
  ASSERT_TRUE(cache.Save(path).ok());

  // Reload into a capacity-3 cache and add one more entry: the eviction
  // victim must be 2 — the entry that was coldest when the file was saved.
  QueryCache reloaded(/*num_shards=*/1, /*max_entries=*/3);
  ASSERT_TRUE(reloaded.Load(path).ok());
  ASSERT_EQ(reloaded.size(), 3u);
  reloaded.Insert(4, list);
  EXPECT_FALSE(reloaded.Contains(2));
  EXPECT_TRUE(reloaded.Contains(1));
  EXPECT_TRUE(reloaded.Contains(3));
  EXPECT_TRUE(reloaded.Contains(4));
  EXPECT_EQ(reloaded.evictions(), 1u);
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, LoadMergesFirstWriterWins) {
  QueryCache a;
  const std::vector<NodeId> from_a = {1, 2};
  a.Insert(10, from_a);
  const std::string path = CacheTempPath("merge.wnwcache");
  ASSERT_TRUE(a.Save(path).ok());

  QueryCache b;
  const std::vector<NodeId> from_b = {7, 8};
  b.Insert(10, from_b);
  b.Insert(11, from_b);
  ASSERT_TRUE(b.Load(path).ok());
  std::vector<NodeId> out;
  ASSERT_TRUE(b.Lookup(10, &out));
  EXPECT_EQ(out, from_b);  // the live entry beats the file's
  EXPECT_EQ(b.size(), 2u);
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, AttachFileColdStartThenPersist) {
  const std::string path = CacheTempPath("attach.wnwcache");
  std::remove(path.c_str());
  {
    QueryCache cache;
    ASSERT_TRUE(cache.AttachFile(path).ok());  // missing file = cold start
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.has_attached_file());
    const std::vector<NodeId> list = {5, 6};
    cache.Insert(3, list);
    ASSERT_TRUE(cache.Persist().ok());
    // A second Persist with no changes is a no-op (and still OK).
    ASSERT_TRUE(cache.Persist().ok());
  }
  QueryCache warm;
  ASSERT_TRUE(warm.AttachFile(path).ok());
  EXPECT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm.Contains(3));
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, MissingAndCorruptFilesAreStatuses) {
  QueryCache cache;
  EXPECT_EQ(cache.Load(CacheTempPath("never_written.wnwcache")).code(),
            StatusCode::kNotFound);
  const std::string path = CacheTempPath("corrupt.wnwcache");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("WNWSNAP1 but then garbage follows here...............", f);
    std::fclose(f);
  }
  EXPECT_EQ(cache.Load(path).code(), StatusCode::kIOError);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

// --- topology handshake (stale persisted caches of a changed graph) --------

TEST(QueryCachePersistenceTest, LoadRejectsStaleTopologyAsFailedPrecondition) {
  const std::string path = CacheTempPath("stale_load.wnwcache");
  {
    QueryCache cache;
    cache.BindTopology(0xAAAA1111u);
    cache.Insert(3, std::vector<NodeId>{5, 6});
    ASSERT_TRUE(cache.Save(path).ok());
  }
  QueryCache other;
  other.BindTopology(0xBBBB2222u);  // "the graph changed"
  const Status loaded = other.Load(path);
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(other.size(), 0u);  // nothing leaked in before the reject

  // Matching checksum loads; an unbound reader (checksum 0) also loads —
  // the handshake never locks out a caller that opted out of it.
  QueryCache matching;
  matching.BindTopology(0xAAAA1111u);
  EXPECT_TRUE(matching.Load(path).ok());
  EXPECT_EQ(matching.size(), 1u);
  QueryCache unbound;
  EXPECT_TRUE(unbound.Load(path).ok());
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, AttachFileDropsStaleFileAndColdStarts) {
  const std::string path = CacheTempPath("stale_attach.wnwcache");
  std::remove(path.c_str());
  {
    QueryCache cache;
    ASSERT_TRUE(cache.AttachFile(path, /*expected_topology=*/0x1111u).ok());
    cache.Insert(7, std::vector<NodeId>{1, 2});
    ASSERT_TRUE(cache.Persist().ok());
  }
  // Same file, different graph: attach succeeds as a COLD start (the stale
  // contents are dropped, counted, and not loaded), and the next Persist
  // rewrites the file under the new topology.
  {
    QueryCache cache;
    ASSERT_TRUE(cache.AttachFile(path, /*expected_topology=*/0x2222u).ok());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stale_drops(), 1u);
    cache.Insert(9, std::vector<NodeId>{3});
    ASSERT_TRUE(cache.Persist().ok());
  }
  // The rewritten file now warm-starts topology 0x2222 without a drop.
  QueryCache warm;
  ASSERT_TRUE(warm.AttachFile(path, /*expected_topology=*/0x2222u).ok());
  EXPECT_EQ(warm.stale_drops(), 0u);
  EXPECT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm.Contains(9));
  EXPECT_FALSE(warm.Contains(7));  // the stale entry is gone for good
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, LegacyFileWithoutTopologyFieldLoads) {
  // Files written before CacheMetaSection grew the topology field carry a
  // 24-byte meta section; they must stay loadable (checksum reads as 0 =
  // unchecked) even by a topology-bound cache.
  const std::string path = CacheTempPath("legacy.wnwcache");
  {
    const storage::CacheMetaSection meta{/*entries=*/1, /*total_values=*/2,
                                         /*shards_hint=*/1, 0,
                                         /*topology=*/0x12345u};
    const std::vector<NodeId> nodes = {4};
    const std::vector<uint64_t> offsets = {0, 2};
    const std::vector<NodeId> values = {8, 9};
    storage::SnapshotWriter writer;
    writer.AddSection(
        storage::SectionKind::kCacheMeta, 0,
        {reinterpret_cast<const std::byte*>(&meta),
         offsetof(storage::CacheMetaSection, topology)});  // legacy 24 bytes
    writer.AddArraySection<NodeId>(storage::SectionKind::kCacheNodes, 0,
                                   nodes);
    writer.AddArraySection<uint64_t>(storage::SectionKind::kCacheOffsets, 0,
                                     offsets);
    writer.AddArraySection<NodeId>(storage::SectionKind::kCacheValues, 0,
                                   values);
    ASSERT_TRUE(writer.Write(storage::FileKind::kQueryCache, path).ok());
  }
  QueryCache bound;
  bound.BindTopology(0x99999u);
  ASSERT_TRUE(bound.Load(path).ok());
  std::vector<NodeId> out;
  ASSERT_TRUE(bound.Lookup(4, &out));
  EXPECT_EQ(out, (std::vector<NodeId>{8, 9}));
  std::remove(path.c_str());
}

TEST(QueryCachePersistenceTest, SessionDropsStaleCacheFileOfChangedGraph) {
  // End-to-end through SamplingSession: a cache file persisted against one
  // graph must not poison a session over a different graph — the session
  // cold-starts, reports the drop in its stats, and still samples fine.
  const std::string path = CacheTempPath("stale_session.wnwcache");
  std::remove(path.c_str());
  const Graph first = testing::MakeTestBA(60, 3, 11);
  const Graph changed = testing::MakeTestBA(60, 3, 12);
  ASSERT_NE(first.TopologyChecksum(), changed.TopologyChecksum());
  {
    SessionOptions opts;
    opts.cache_file = path;
    auto session = SamplingSession::Open(&first, "walk:srw?steps=4", opts);
    ASSERT_TRUE(session.ok());
    std::vector<NodeId> samples;
    ASSERT_TRUE((*session)->DrawInto(&samples, 5).ok());
  }
  {
    SessionOptions opts;
    opts.cache_file = path;
    auto session = SamplingSession::Open(&changed, "walk:srw?steps=4", opts);
    ASSERT_TRUE(session.ok());
    std::vector<NodeId> samples;
    ASSERT_TRUE((*session)->DrawInto(&samples, 5).ok());
    const SessionStats stats = (*session)->Stats();
    EXPECT_EQ(stats.cache_stale_drops, 1u);
    // Cold start: the walk paid real backend fetches, nothing rode on the
    // stale file.
    EXPECT_GT(stats.query_cost, 0u);
  }
  // The file was rewritten for `changed`; a third session on it warm-starts.
  {
    SessionOptions opts;
    opts.cache_file = path;
    auto session = SamplingSession::Open(&changed, "walk:srw?steps=4", opts);
    ASSERT_TRUE(session.ok());
    EXPECT_EQ((*session)->Stats().cache_stale_drops, 0u);
  }
  std::remove(path.c_str());
}

TEST(QueryCacheTest, ConcurrentSessionsViaSessionApi) {
  const Graph g = testing::MakeTestBA(200, 3, 17);
  auto cache = std::make_shared<QueryCache>();
  auto backend = std::make_shared<InMemoryBackend>(&g);

  constexpr int kTrials = 6;
  std::vector<uint64_t> costs(kTrials, 0);
  ParallelFor(
      kTrials,
      [&](size_t i) {
        SessionOptions opts;
        opts.backend = backend;
        opts.query_cache = cache;
        opts.seed = 500 + i;
        auto session = SamplingSession::Open(&g, "we:srw?diameter=4", opts);
        ASSERT_TRUE(session.ok());
        std::vector<NodeId> samples;
        ASSERT_TRUE((*session)->DrawInto(&samples, 20).ok());
        costs[i] = (*session)->Stats().query_cost;
      },
      kTrials);

  // Isolated baseline for the same seeds: strictly more expensive in total.
  uint64_t isolated_total = 0, shared_total = 0;
  for (int i = 0; i < kTrials; ++i) {
    SessionOptions opts;
    opts.seed = 500 + static_cast<uint64_t>(i);
    auto session = SamplingSession::Open(&g, "we:srw?diameter=4", opts);
    ASSERT_TRUE(session.ok());
    std::vector<NodeId> samples;
    ASSERT_TRUE((*session)->DrawInto(&samples, 20).ok());
    isolated_total += (*session)->Stats().query_cost;
    shared_total += costs[i];
  }
  EXPECT_LT(shared_total, isolated_total);
}

}  // namespace
}  // namespace wnw
