// The cross-session QueryCache: hit/miss accounting, cache-aware cost
// billing in AccessInterface, and thread-safety under genuinely concurrent
// sampling sessions (the configuration the harness runs parallel trials
// in). The sanitizer CI job makes the concurrency tests load-bearing.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "access/access_interface.h"
#include "access/query_cache.h"
#include "core/session.h"
#include "test_util.h"
#include "util/parallel.h"

namespace wnw {
namespace {

TEST(QueryCacheTest, LookupInsertAndStats) {
  QueryCache cache;
  std::vector<NodeId> out;
  EXPECT_FALSE(cache.Lookup(7, &out));
  EXPECT_EQ(cache.misses(), 1u);
  const std::vector<NodeId> list = {1, 2, 3};
  cache.Insert(7, list);
  EXPECT_TRUE(cache.Contains(7));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out, list);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 0.5, 1e-12);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(QueryCacheTest, FirstWriterWins) {
  QueryCache cache;
  cache.Insert(3, std::vector<NodeId>{1, 2});
  cache.Insert(3, std::vector<NodeId>{9});
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Lookup(3, &out));
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2}));
}

TEST(QueryCacheTest, UnboundedByDefault) {
  QueryCache cache(4);
  for (NodeId u = 0; u < 5000; ++u) cache.Insert(u, std::vector<NodeId>{u});
  EXPECT_EQ(cache.size(), 5000u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.max_entries(), 0u);
}

TEST(QueryCacheTest, CapEvictsLeastRecentlyUsedPerShard) {
  // One shard so LRU order is globally observable.
  QueryCache cache(1, 3);
  EXPECT_EQ(cache.max_entries(), 3u);
  cache.Insert(0, std::vector<NodeId>{0});
  cache.Insert(1, std::vector<NodeId>{1});
  cache.Insert(2, std::vector<NodeId>{2});
  EXPECT_EQ(cache.evictions(), 0u);
  // Touch 0: it becomes most-recently-used, so 1 is now the coldest.
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Lookup(0, &out));
  cache.Insert(3, std::vector<NodeId>{3});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Contains(0));   // survived via recency
  EXPECT_FALSE(cache.Contains(1));  // evicted
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(QueryCacheTest, ContainsDoesNotRefreshRecency) {
  QueryCache cache(1, 2);
  cache.Insert(0, std::vector<NodeId>{0});
  cache.Insert(1, std::vector<NodeId>{1});
  // Peeking at 0 must NOT save it: 0 is still the coldest entry.
  EXPECT_TRUE(cache.Contains(0));
  cache.Insert(2, std::vector<NodeId>{2});
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(QueryCacheTest, CappedCacheStaysBoundedUnderConcurrentSessions) {
  const Graph g = testing::MakeTestBA(400, 3, 29);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  constexpr size_t kShards = 4;
  constexpr size_t kMax = 64;
  auto cache = std::make_shared<QueryCache>(kShards, kMax);

  ParallelFor(
      8,
      [&](size_t i) {
        AccessInterface access(backend, cache);
        Rng rng(Mix64(7000 + i));
        NodeId cur = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
        for (int step = 0; step < 1500; ++step) {
          const NodeId next = access.SampleNeighbor(cur, rng);
          if (next == kInvalidNode) break;
          cur = next;
        }
      },
      8);

  // The per-shard cap bounds the total at max(1, kMax/shards) * shards.
  EXPECT_LE(cache->size(), (kMax / kShards) * kShards);
  EXPECT_GT(cache->evictions(), 0u);
  // Surviving entries are intact (no torn lists under eviction churn).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> out;
    if (!cache->Lookup(u, &out)) continue;
    const auto truth = g.Neighbors(u);
    EXPECT_EQ(out, std::vector<NodeId>(truth.begin(), truth.end())) << u;
  }
}

TEST(QueryCacheTest, SecondSessionRidesOnFirstSessionsQueries) {
  const Graph g = testing::MakeTestBA(80, 3);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  auto cache = std::make_shared<QueryCache>();

  AccessInterface first(backend, cache);
  for (NodeId u = 0; u < 40; ++u) first.Neighbors(u);
  EXPECT_EQ(first.query_cost(), 40u);
  EXPECT_EQ(first.meter().shared_cache_hits, 0u);

  AccessInterface second(backend, cache);
  for (NodeId u = 0; u < 40; ++u) second.Neighbors(u);
  // Every node came out of the shared cache: zero distinct-node cost.
  EXPECT_EQ(second.query_cost(), 0u);
  EXPECT_EQ(second.meter().backend_fetches, 0u);
  EXPECT_EQ(second.meter().shared_cache_hits, 40u);
  EXPECT_EQ(second.total_queries(), 40u);
  // Responses are identical to the backend's.
  auto direct = backend->FetchNeighbors(5);
  const auto via_cache = second.Neighbors(5);
  EXPECT_EQ(std::vector<NodeId>(via_cache.begin(), via_cache.end()),
            direct->TakeNeighbors());
}

TEST(QueryCacheTest, ConcurrentSessionsShareOneCacheSafely) {
  const Graph g = testing::MakeTestBA(300, 3, 13);
  auto backend = std::make_shared<InMemoryBackend>(&g);
  auto cache = std::make_shared<QueryCache>(4);

  constexpr int kSessions = 8;
  std::vector<uint64_t> costs(kSessions, 0);
  ParallelFor(
      kSessions,
      [&](size_t i) {
        AccessInterface access(backend, cache);
        Rng rng(Mix64(1000 + i));
        NodeId cur = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
        for (int step = 0; step < 2000; ++step) {
          const NodeId next = access.SampleNeighbor(cur, rng);
          if (next == kInvalidNode) break;
          cur = next;
        }
        costs[i] = access.query_cost();
      },
      kSessions);

  // Every cached list must match the graph exactly — a torn or corrupted
  // entry would surface here (and under ASan in CI).
  uint64_t cached = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> out;
    if (!cache->Lookup(u, &out)) continue;
    ++cached;
    const auto truth = g.Neighbors(u);
    EXPECT_EQ(out, std::vector<NodeId>(truth.begin(), truth.end())) << u;
  }
  EXPECT_GT(cached, 0u);
  // Every cached node was fetched (and billed) by at least one session;
  // concurrent duplicate fetches of a node can only add to the bill.
  uint64_t total_cost = 0;
  for (uint64_t c : costs) total_cost += c;
  EXPECT_GE(total_cost, cached);
}

TEST(QueryCacheTest, ConcurrentSessionsViaSessionApi) {
  const Graph g = testing::MakeTestBA(200, 3, 17);
  auto cache = std::make_shared<QueryCache>();
  auto backend = std::make_shared<InMemoryBackend>(&g);

  constexpr int kTrials = 6;
  std::vector<uint64_t> costs(kTrials, 0);
  ParallelFor(
      kTrials,
      [&](size_t i) {
        SessionOptions opts;
        opts.backend = backend;
        opts.query_cache = cache;
        opts.seed = 500 + i;
        auto session = SamplingSession::Open(&g, "we:srw?diameter=4", opts);
        ASSERT_TRUE(session.ok());
        std::vector<NodeId> samples;
        ASSERT_TRUE((*session)->DrawInto(&samples, 20).ok());
        costs[i] = (*session)->Stats().query_cost;
      },
      kTrials);

  // Isolated baseline for the same seeds: strictly more expensive in total.
  uint64_t isolated_total = 0, shared_total = 0;
  for (int i = 0; i < kTrials; ++i) {
    SessionOptions opts;
    opts.seed = 500 + static_cast<uint64_t>(i);
    auto session = SamplingSession::Open(&g, "we:srw?diameter=4", opts);
    ASSERT_TRUE(session.ok());
    std::vector<NodeId> samples;
    ASSERT_TRUE((*session)->DrawInto(&samples, 20).ok());
    isolated_total += (*session)->Stats().query_cost;
    shared_total += costs[i];
  }
  EXPECT_LT(shared_total, isolated_total);
}

}  // namespace
}  // namespace wnw
