// The pluggable access-backend layer: InMemoryBackend restriction
// simulation, the latency / rate-limit decorators' simulated-time
// accounting (batches pay the slowest round trip, not the sum), and the
// acceptance bar for the redesign — every registered sampler draws correctly
// against both the plain in-memory backend and a latency-decorated stack
// with no sampler-code changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "access/access_interface.h"
#include "access/backend.h"
#include "access/decorators.h"
#include "access/sharded_backend.h"
#include "core/session.h"
#include "graph/generators.h"
#include "graph/sharded_graph.h"
#include "test_util.h"

namespace wnw {
namespace {

TEST(InMemoryBackendTest, ServesGraphNeighbors) {
  const Graph g = testing::MakeHouseGraph();
  InMemoryBackend backend(&g);
  auto reply = backend.FetchNeighbors(0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(testing::ToVec(reply->neighbors), (std::vector<NodeId>{1, 2, 3}));
  // Unrestricted responses are served straight from the CSR adjacency
  // arena: a view into the graph's storage, no owned copy.
  EXPECT_TRUE(reply->owned.empty());
  EXPECT_EQ(reply->neighbors.data(), g.Neighbors(0).data());
  EXPECT_DOUBLE_EQ(reply->simulated_seconds, 0.0);
  EXPECT_TRUE(backend.deterministic());
  EXPECT_EQ(backend.name(), "memory");
}

TEST(InMemoryBackendTest, OutOfRangeNodeIsStatusNotCrash) {
  const Graph g = testing::MakeHouseGraph();
  InMemoryBackend backend(&g);
  EXPECT_EQ(backend.FetchNeighbors(99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(InMemoryBackendTest, RandomSubsetIsNotDeterministic) {
  const Graph g = MakeStar(100).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 5;
  InMemoryBackend backend(&g, opts);
  EXPECT_FALSE(backend.deterministic());
  std::set<std::vector<NodeId>> observed;
  for (int i = 0; i < 10; ++i) {
    observed.insert(backend.FetchNeighbors(0)->TakeNeighbors());
  }
  EXPECT_GT(observed.size(), 1u);
}

TEST(InMemoryBackendTest, FixedSubsetStableAcrossFetchesAndBatches) {
  const Graph g = MakeStar(100).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kFixedSubset;
  opts.max_neighbors = 5;
  InMemoryBackend backend(&g, opts);
  const std::vector<NodeId> first = backend.FetchNeighbors(0)->TakeNeighbors();
  EXPECT_EQ(first.size(), 5u);
  EXPECT_EQ(backend.FetchNeighbors(0)->TakeNeighbors(), first);
  const std::vector<NodeId> nodes = {0, 1, 0};
  auto batch = backend.FetchBatch(nodes);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->lists.size(), 3u);
  EXPECT_EQ(batch->lists[0], first);
  EXPECT_EQ(batch->lists[2], first);
}

TEST(LatencyBackendTest, BillsMeanPerRequest) {
  const Graph g = testing::MakeHouseGraph();
  LatencyConfig config;
  config.mean_ms = 50.0;
  config.jitter_ms = 0.0;
  LatencyBackend backend(std::make_shared<InMemoryBackend>(&g), config);
  auto reply = backend.FetchNeighbors(0);
  ASSERT_TRUE(reply.ok());
  EXPECT_DOUBLE_EQ(reply->simulated_seconds, 0.050);
  EXPECT_EQ(backend.name(), "latency(memory)");
  // The response payload is untouched.
  EXPECT_EQ(testing::ToVec(reply->neighbors), (std::vector<NodeId>{1, 2, 3}));
}

TEST(LatencyBackendTest, JitterStaysInBounds) {
  const Graph g = testing::MakeHouseGraph();
  LatencyConfig config;
  config.mean_ms = 50.0;
  config.jitter_ms = 10.0;
  LatencyBackend backend(std::make_shared<InMemoryBackend>(&g), config);
  for (int i = 0; i < 200; ++i) {
    const double s = backend.FetchNeighbors(0)->simulated_seconds;
    EXPECT_GE(s, 0.040);
    EXPECT_LE(s, 0.060);
  }
}

TEST(LatencyBackendTest, BatchPaysSlowestRoundTripNotSum) {
  const Graph g = testing::MakeTestBA(60, 3);
  LatencyConfig config;
  config.mean_ms = 50.0;
  config.jitter_ms = 10.0;
  LatencyBackend backend(std::make_shared<InMemoryBackend>(&g), config);
  const std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  auto batch = backend.FetchBatch(nodes);
  ASSERT_TRUE(batch.ok());
  // Concurrent dispatch: one round trip in [mean - jitter, mean + jitter],
  // far below the 8 * 40ms sequential floor.
  EXPECT_GE(batch->simulated_seconds, 0.040);
  EXPECT_LE(batch->simulated_seconds, 0.060);
}

TEST(LatencyBackendTest, FailuresAddRetryBackoff) {
  const Graph g = testing::MakeHouseGraph();
  LatencyConfig config;
  config.mean_ms = 10.0;
  config.failure_rate = 0.5;
  config.retry_backoff_ms = 100.0;
  config.max_retries = 50;
  LatencyBackend backend(std::make_shared<InMemoryBackend>(&g), config);
  // With p=0.5 the expected cost per request is one backoff + two RTTs;
  // across many requests, total simulated time must clearly exceed the
  // no-failure baseline of 10ms per request.
  double total = 0.0;
  constexpr int kRequests = 300;
  for (int i = 0; i < kRequests; ++i) {
    auto reply = backend.FetchNeighbors(0);
    ASSERT_TRUE(reply.ok());
    total += reply->simulated_seconds;
  }
  EXPECT_GT(total, kRequests * 0.010 * 2);
}

TEST(LatencyBackendTest, ExhaustedRetriesSurfaceAsStatus) {
  const Graph g = testing::MakeHouseGraph();
  LatencyConfig config;
  config.failure_rate = 0.95;
  config.max_retries = 0;  // a single failure already errors out
  LatencyBackend backend(std::make_shared<InMemoryBackend>(&g), config);
  bool saw_error = false;
  for (int i = 0; i < 100 && !saw_error; ++i) {
    saw_error = backend.FetchNeighbors(0).status().code() ==
                StatusCode::kResourceExhausted;
  }
  EXPECT_TRUE(saw_error);
}

TEST(RateLimitBackendTest, WaitsBetweenWindowsAndAttributesToReply) {
  const Graph g = MakeCycle(100).value();
  RateLimitBackend backend(std::make_shared<InMemoryBackend>(&g), {10, 60.0});
  double waited = 0.0;
  for (NodeId u = 0; u < 25; ++u) {
    waited += backend.FetchNeighbors(u)->simulated_seconds;
  }
  // 25 queries at 10 per minute: 2 full window waits.
  EXPECT_DOUBLE_EQ(waited, 120.0);
  EXPECT_DOUBLE_EQ(backend.total_waited_seconds(), 120.0);
}

TEST(RateLimitBackendTest, BatchStillPaysTokenWaits) {
  const Graph g = MakeCycle(100).value();
  RateLimitBackend backend(std::make_shared<InMemoryBackend>(&g), {10, 60.0});
  std::vector<NodeId> nodes(25);
  for (NodeId u = 0; u < 25; ++u) nodes[u] = u;
  auto batch = backend.FetchBatch(nodes);
  ASSERT_TRUE(batch.ok());
  // Rate limits are server-enforced per query: batching does not help.
  EXPECT_DOUBLE_EQ(batch->simulated_seconds, 120.0);
}

TEST(AccessInterfaceBackendTest, SessionViewBillsWaitingPerSession) {
  const Graph g = MakeCycle(100).value();
  auto backend = std::make_shared<RateLimitBackend>(
      std::make_shared<InMemoryBackend>(&g), RateLimitConfig{10, 60.0});
  AccessInterface a(backend), b(backend);
  for (NodeId u = 0; u < 10; ++u) a.Neighbors(u);  // exhausts the window
  EXPECT_DOUBLE_EQ(a.waited_seconds(), 0.0);
  b.Neighbors(50);  // next query crosses into a fresh window
  EXPECT_DOUBLE_EQ(b.waited_seconds(), 60.0);
  // The wait belongs to the session that incurred it.
  EXPECT_DOUBLE_EQ(a.waited_seconds(), 0.0);
}

TEST(AccessInterfaceBackendTest, PrefetchBillsLikeSequentialButWaitsOnce) {
  const Graph g = testing::MakeTestBA(80, 3);
  LatencyConfig latency;
  latency.mean_ms = 50.0;
  auto stack = BuildBackendStack(&g, {.access = {}, .latency = latency});
  AccessInterface access(stack);
  const std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  access.Prefetch(nodes);
  EXPECT_EQ(access.query_cost(), 10u);
  EXPECT_DOUBLE_EQ(access.waited_seconds(), 0.050);  // one round trip
  // The prefetched lists now serve queries without further fetches.
  for (NodeId u : nodes) access.Neighbors(u);
  EXPECT_EQ(access.query_cost(), 10u);
  EXPECT_EQ(access.meter().backend_fetches, 10u);
  EXPECT_DOUBLE_EQ(access.waited_seconds(), 0.050);
  EXPECT_EQ(access.total_queries(), 10u);
}

TEST(AccessInterfaceBackendTest, MarkRecaptureUnderRandomSubsetViaStack) {
  // EstimateDegreeMarkRecapture under kRandomSubset, exercised through a
  // latency-decorated stack: fresh subsets per call flow through the
  // decorator, repeats are billed as total (not unique) queries, and the
  // Petersen estimate still lands near the true degree.
  const Graph g = MakeStar(201).value();  // center degree 200
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 40;
  LatencyConfig latency;
  latency.mean_ms = 10.0;
  auto stack = BuildBackendStack(&g, {.access = opts, .latency = latency});
  AccessInterface access(stack);
  constexpr int kCalls = 30;
  const double est = EstimateDegreeMarkRecapture(access, 0, kCalls);
  EXPECT_NEAR(est, 200.0, 30.0);
  EXPECT_EQ(access.query_cost(), 1u);  // one distinct node...
  EXPECT_EQ(access.total_queries(), static_cast<uint64_t>(kCalls));
  // ...but every repeat really hits the (non-cacheable) backend and waits.
  EXPECT_EQ(access.meter().backend_fetches, static_cast<uint64_t>(kCalls));
  EXPECT_NEAR(access.waited_seconds(), kCalls * 0.010, 1e-9);
}

TEST(AccessInterfaceBackendTest, MarkRecaptureExactWhenBelowCap) {
  const Graph g = testing::MakeHouseGraph();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 10;
  auto stack = BuildBackendStack(&g, {.access = opts, .latency = {}});
  AccessInterface access(stack);
  EXPECT_DOUBLE_EQ(EstimateDegreeMarkRecapture(access, 0, 4), 3.0);
}

// --- the acceptance bar ------------------------------------------------------

TEST(BackendAcceptanceTest, EverySamplerDrawsAgainstBothBackends) {
  const Graph g = testing::MakeTestBA(120, 3);
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    const std::string spec = name + ":srw?" +
                             (name.rfind("we", 0) == 0 ? "diameter=4&" : "") +
                             "backend=latency&mean_ms=5&jitter_ms=1";
    // Latency-decorated stack, via the spec string.
    SessionOptions opts;
    opts.seed = 77;
    auto latency_session = SamplingSession::Open(&g, spec, opts);
    ASSERT_TRUE(latency_session.ok()) << spec << ": "
                                      << latency_session.status().ToString();
    std::vector<NodeId> latency_samples;
    ASSERT_TRUE((*latency_session)->DrawInto(&latency_samples, 15).ok())
        << spec;
    const SessionStats stats = (*latency_session)->Stats();
    EXPECT_EQ(stats.backend, "latency(memory)") << spec;
    EXPECT_GT(stats.waited_seconds, 0.0) << spec;

    // Plain in-memory backend, same sampler seed: the sampler draws the
    // exact same nodes — the backend swap is invisible to sampler code.
    const std::string plain =
        name + ":srw" + (name.rfind("we", 0) == 0 ? "?diameter=4" : "");
    auto memory_session = SamplingSession::Open(&g, plain, opts);
    ASSERT_TRUE(memory_session.ok()) << plain;
    std::vector<NodeId> memory_samples;
    ASSERT_TRUE((*memory_session)->DrawInto(&memory_samples, 15).ok());
    EXPECT_EQ((*memory_session)->Stats().backend, "memory");
    EXPECT_EQ(memory_samples, latency_samples) << spec;
  }
}

TEST(BackendSpecTest, MalformedBackendParamsAreStatuses) {
  const Graph g = testing::MakeTestBA(40, 3);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?backend=carrier-pigeon")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Latency knobs without backend=latency fail loudly, not silently.
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?mean_ms=50").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?backend=latency&mean_ms=fast")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  // Out-of-range user input is a Status, never a constructor CHECK abort.
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?backend=latency&fail_rate=1")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?backend=latency&mean_ms=-5")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  // A spec-selected backend conflicting with an explicit SessionOptions
  // backend fails loudly instead of silently dropping the spec's request.
  SessionOptions with_backend;
  with_backend.backend = std::make_shared<InMemoryBackend>(&g);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?backend=latency&mean_ms=5",
                                  with_backend)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --- the sharded origin ------------------------------------------------------

std::shared_ptr<ShardedBackend> MakeSharded(const Graph& g, int shards,
                                            AccessOptions options = {},
                                            ShardPartition partition =
                                                ShardPartition::kModulo) {
  auto sharded_graph = std::make_shared<const ShardedGraph>(
      ShardedGraph::FromGraph(g, shards, partition).value());
  return std::make_shared<ShardedBackend>(sharded_graph,
                                          ShardedBackendOptions{options});
}

TEST(ShardedBackendTest, MatchesInMemoryResponsesNodeForNode) {
  const Graph g = testing::MakeTestBA(80, 3);
  for (ShardPartition partition :
       {ShardPartition::kModulo, ShardPartition::kRange,
        ShardPartition::kDegreeBalanced}) {
    InMemoryBackend memory(&g);
    auto sharded = MakeSharded(g, 4, {}, partition);
    EXPECT_EQ(sharded->num_nodes(), g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      auto a = memory.FetchNeighbors(u);
      auto b = sharded->FetchNeighbors(u);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(b->shard, sharded->ShardOf(u));
      EXPECT_EQ(a->TakeNeighbors(), b->TakeNeighbors()) << "node " << u;
    }
  }
  EXPECT_EQ(MakeSharded(g, 4)->name(), "sharded[hash:4](memory)");
}

TEST(ShardedBackendTest, FixedSubsetsAreShardingInvariant) {
  const Graph g = MakeStar(100).value();
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kFixedSubset;
  opts.max_neighbors = 5;
  opts.seed = 321;
  InMemoryBackend memory(&g, opts);
  auto sharded = MakeSharded(g, 3, opts);
  for (NodeId u : {NodeId{0}, NodeId{1}, NodeId{50}}) {
    EXPECT_EQ(memory.FetchNeighbors(u)->TakeNeighbors(),
              sharded->FetchNeighbors(u)->TakeNeighbors());
  }
}

TEST(ShardedBackendTest, RandomSubsetCallStreamsAreShardingInvariant) {
  // Type-1 responses are keyed on (seed, node, per-node call index), so the
  // same per-node call sequence yields the same fresh subsets no matter how
  // the origin is sharded or how calls to *different* nodes interleave.
  const Graph g = testing::MakeTestBA(60, 5);
  AccessOptions opts;
  opts.restriction = NeighborRestriction::kRandomSubset;
  opts.max_neighbors = 3;
  opts.seed = 77;
  InMemoryBackend memory(&g, opts);
  auto sharded = MakeSharded(g, 3, opts);
  // Different global interleavings, same per-node order.
  std::vector<std::vector<NodeId>> from_memory, from_sharded;
  for (int round = 0; round < 3; ++round) {
    for (NodeId u = 0; u < 10; ++u) {
      from_memory.push_back(memory.FetchNeighbors(u)->TakeNeighbors());
    }
  }
  for (NodeId u = 0; u < 10; ++u) {
    for (int round = 0; round < 3; ++round) {
      from_sharded.push_back(sharded->FetchNeighbors(u)->TakeNeighbors());
    }
  }
  for (NodeId u = 0; u < 10; ++u) {
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(from_memory[static_cast<size_t>(round) * 10 + u],
                from_sharded[static_cast<size_t>(u) * 3 + round])
          << "node " << u << " call " << round;
    }
  }
  EXPECT_FALSE(sharded->deterministic());
}

TEST(ShardedBackendTest, BatchPaysTheSlowestShardAndStallsBillPerShard) {
  // 30 queries against a 10-per-minute budget: the unsharded origin stalls
  // two full windows (120s); split across two shards, each endpoint's own
  // limiter stalls once and the stalls overlap — the batch pays 60s.
  const Graph g = MakeCycle(100).value();
  AccessOptions opts;
  opts.rate_limit = {10, 60.0};
  std::vector<NodeId> nodes(30);
  for (NodeId u = 0; u < 30; ++u) nodes[u] = u;

  RateLimitBackend unsharded(std::make_shared<InMemoryBackend>(&g),
                             opts.rate_limit);
  EXPECT_DOUBLE_EQ(unsharded.FetchBatch(nodes)->simulated_seconds, 120.0);

  auto sharded = MakeSharded(g, 2, opts);
  auto batch = sharded->FetchBatch(nodes);
  ASSERT_TRUE(batch.ok());
  EXPECT_DOUBLE_EQ(batch->simulated_seconds, 60.0);
  ASSERT_EQ(batch->shards.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(batch->shards[i], static_cast<int32_t>(nodes[i] % 2));
  }
  ASSERT_EQ(batch->shard_stalls.size(), 2u);
  EXPECT_DOUBLE_EQ(batch->shard_stalls[0], 60.0);
  EXPECT_DOUBLE_EQ(batch->shard_stalls[1], 60.0);
  const auto counters = sharded->CountersSnapshot();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].fetches, 15u);
  EXPECT_EQ(counters[1].fetches, 15u);
  EXPECT_DOUBLE_EQ(counters[0].stall_seconds, 60.0);
}

TEST(ShardedBackendTest, SessionMeterSplitsFetchesAndStallsByShard) {
  const Graph g = MakeCycle(100).value();
  AccessOptions opts;
  opts.rate_limit = {10, 60.0};
  auto sharded = MakeSharded(g, 2, opts);
  AccessInterface access(sharded);
  for (NodeId u = 0; u < 24; ++u) access.Neighbors(u);  // 12 per shard
  const CostMeter& meter = access.meter();
  ASSERT_EQ(meter.shard_fetches.size(), 2u);
  EXPECT_EQ(meter.shard_fetches[0], 12u);
  EXPECT_EQ(meter.shard_fetches[1], 12u);
  // Each shard's own limiter stalled once past its 10-token window.
  ASSERT_EQ(meter.shard_stall_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(meter.shard_stall_seconds[0], 60.0);
  EXPECT_DOUBLE_EQ(meter.shard_stall_seconds[1], 60.0);
  EXPECT_DOUBLE_EQ(access.waited_seconds(), 120.0);
}

TEST(ShardedBackendTest, SessionStatsExposeShardTelemetry) {
  const Graph g = testing::MakeTestBA(120, 3);
  SessionOptions opts;
  opts.seed = 5;
  auto session = SamplingSession::Open(&g, "burnin:srw?shards=3", opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::vector<NodeId> samples;
  ASSERT_TRUE((*session)->DrawInto(&samples, 5).ok());
  const SessionStats stats = (*session)->Stats();
  EXPECT_EQ(stats.backend, "sharded[hash:3](memory)");
  EXPECT_EQ(stats.backend_shards, 3);
  ASSERT_EQ(stats.shard_fetches.size(), 3u);
  uint64_t total = 0;
  for (uint64_t f : stats.shard_fetches) total += f;
  EXPECT_EQ(total, stats.backend_fetches);
}

// --- the sharded acceptance bar ----------------------------------------------

TEST(ShardedAcceptanceTest, EverySamplerDrawsIdenticallyAcrossShardCounts) {
  // The tentpole invariant: sharding the origin changes WHERE queries are
  // answered, never what they return — so for a fixed seed every registered
  // sampler draws the same nodes on the unsharded backend and on
  // ShardedBackend(shards=1..8), with and without the async executor.
  const Graph g = testing::MakeTestBA(120, 3);
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    const std::string base =
        name + ":srw" + (name.rfind("we", 0) == 0 ? "?diameter=4" : "");
    SessionOptions opts;
    opts.seed = 41;
    auto baseline_session = SamplingSession::Open(&g, base, opts);
    ASSERT_TRUE(baseline_session.ok()) << base;
    std::vector<NodeId> baseline;
    ASSERT_TRUE((*baseline_session)->DrawInto(&baseline, 12).ok()) << base;
    const uint64_t baseline_cost = (*baseline_session)->Stats().query_cost;

    const char sep = base.find('?') == std::string::npos ? '?' : '&';
    for (int shards : {1, 2, 8}) {
      for (const bool async : {false, true}) {
        std::string spec = base + sep + "shards=" + std::to_string(shards) +
                           "&partition=degree";
        if (async) spec += "&window=4&threads=2";
        auto session = SamplingSession::Open(&g, spec, opts);
        ASSERT_TRUE(session.ok()) << spec << ": "
                                  << session.status().ToString();
        std::vector<NodeId> samples;
        ASSERT_TRUE((*session)->DrawInto(&samples, 12).ok()) << spec;
        EXPECT_EQ(samples, baseline) << spec;
        EXPECT_EQ((*session)->Stats().query_cost, baseline_cost) << spec;
      }
    }
  }
}

TEST(ShardedAcceptanceTest, WalksMatchUnderRandomSubsetRestriction) {
  // kRandomSubset walks traverse via SampleNeighbor over fresh server
  // subsets (the only defined traversal under type 1 — effective-neighbor
  // filtering needs stable lists). The counter-mode subset streams make
  // even these non-deterministic responses identical across shard counts,
  // so the whole walk trajectory is sharding-invariant.
  const Graph g = testing::MakeTestBA(100, 4);
  AccessOptions access;
  access.restriction = NeighborRestriction::kRandomSubset;
  access.max_neighbors = 3;
  access.seed = 99;
  std::vector<NodeId> baseline;
  for (int shards : {0, 1, 4}) {
    std::shared_ptr<AccessBackend> backend;
    if (shards == 0) {
      backend = std::make_shared<InMemoryBackend>(&g, access);
    } else {
      backend = MakeSharded(g, shards, access);
    }
    AccessInterface view(backend);
    Rng walk_rng(1234);
    std::vector<NodeId> walk;
    NodeId cur = 5;
    for (int step = 0; step < 200; ++step) {
      cur = view.SampleNeighbor(cur, walk_rng);
      ASSERT_NE(cur, kInvalidNode);
      walk.push_back(cur);
    }
    if (shards == 0) {
      baseline = walk;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(walk, baseline) << "shards=" << shards;
    }
  }
}

TEST(ShardedAcceptanceTest, WalkerPoolSharesOneShardedOrigin) {
  const Graph g = testing::MakeTestBA(150, 3);
  WalkerPoolOptions pool;
  pool.walkers = 4;
  pool.samples_per_walker = 5;
  pool.session.seed = 7;
  auto baseline = RunWalkerPool(&g, "we:mhrw?diameter=4", pool);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto sharded = RunWalkerPool(
      &g, "we:mhrw?diameter=4&shards=4&window=8", pool);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->samples, baseline->samples);
  for (const SessionStats& stats : sharded->stats) {
    EXPECT_EQ(stats.backend_shards, 4);
    EXPECT_EQ(stats.backend, "sharded[hash:4](memory)");
  }
}

TEST(ShardedBackendTest, DecoratorWrappersKeepShardsDiscoverable) {
  // A sharded origin wrapped in an outer decorator still reports its shard
  // count (AsSharded sees through wrappers), so per-shard telemetry is not
  // silently truncated and a correctly-describing spec is accepted.
  const Graph g = testing::MakeTestBA(100, 3);
  SessionOptions opts;
  opts.seed = 3;
  opts.backend = std::make_shared<RateLimitBackend>(MakeSharded(g, 4),
                                                    RateLimitConfig{});
  auto session =
      SamplingSession::Open(&g, "burnin:srw?shards=4&partition=hash", opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::vector<NodeId> samples;
  ASSERT_TRUE((*session)->DrawInto(&samples, 5).ok());
  const SessionStats stats = (*session)->Stats();
  EXPECT_EQ(stats.backend_shards, 4);
  ASSERT_EQ(stats.shard_fetches.size(), 4u);
  uint64_t total = 0;
  for (uint64_t f : stats.shard_fetches) total += f;
  EXPECT_EQ(total, stats.backend_fetches);
}

TEST(ShardedSpecTest, ConflictingShardKeysAreLoudStatuses) {
  const Graph g = testing::MakeTestBA(40, 3);
  // shards= on an explicit NON-sharded backend: rejected, never silently
  // ignored.
  SessionOptions with_memory;
  with_memory.backend = std::make_shared<InMemoryBackend>(&g);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?shards=2", with_memory)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // shards= / partition= contradicting an explicit sharded backend.
  SessionOptions with_sharded;
  with_sharded.backend = MakeSharded(g, 4);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?shards=8", with_sharded)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?partition=range&shards=4",
                                  with_sharded)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A spec that correctly DESCRIBES the explicit sharded backend is fine.
  EXPECT_TRUE(SamplingSession::Open(&g, "burnin:srw?shards=4&partition=hash",
                                    with_sharded)
                  .ok());
  // Malformed shard keys are Statuses, not crashes.
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?shards=0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?shards=9999").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SamplingSession::Open(&g, "burnin:srw?partition=degree").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(SamplingSession::Open(&g, "burnin:srw?shards=2&partition=banana")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BackendSpecTest, QueryCacheIsBypassedUnderRandomSubset) {
  // Non-deterministic responses cannot be cached; sessions with a cache
  // still open (no error), the cache is simply never consulted.
  const Graph g = testing::MakeTestBA(60, 4);
  SessionOptions opts;
  opts.access.restriction = NeighborRestriction::kRandomSubset;
  opts.access.max_neighbors = 3;
  opts.query_cache = std::make_shared<QueryCache>();
  ASSERT_TRUE(SamplingSession::Open(&g, "burnin:srw", opts).ok());

  AccessOptions aopts;
  aopts.restriction = NeighborRestriction::kRandomSubset;
  aopts.max_neighbors = 3;
  AccessInterface access(std::make_shared<InMemoryBackend>(&g, aopts),
                         opts.query_cache);
  for (int i = 0; i < 10; ++i) access.Neighbors(0);
  EXPECT_EQ(opts.query_cache->size(), 0u);
  EXPECT_EQ(access.meter().shared_cache_hits, 0u);
  EXPECT_EQ(access.meter().backend_fetches, 10u);  // every call hits origin
  EXPECT_EQ(access.query_cost(), 1u);
}

}  // namespace
}  // namespace wnw
