#include <gtest/gtest.h>

#include <cmath>

#include "mcmc/gelman_rubin.h"
#include "random/rng.h"

namespace wnw {
namespace {

TEST(GelmanRubinTest, NeedsAtLeastTwoChains) {
  EXPECT_DEATH(GelmanRubinMonitor{1}, "check failed");
}

TEST(GelmanRubinTest, InfiniteUntilMinSamples) {
  GelmanRubinMonitor monitor(3);
  for (int i = 0; i < 40; ++i) {
    monitor.Add(0, 1.0);
    monitor.Add(1, 1.0);
    monitor.Add(2, 1.0);
  }
  EXPECT_TRUE(std::isinf(monitor.Psrf()));
}

TEST(GelmanRubinTest, AgreeingIidChainsConverge) {
  GelmanRubinMonitor monitor(4);
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    for (size_t c = 0; c < 4; ++c) monitor.Add(c, rng.NextGaussian());
  }
  EXPECT_LT(monitor.Psrf(), 1.05);
  EXPECT_TRUE(monitor.Converged());
}

TEST(GelmanRubinTest, DisagreeingChainsDoNotConverge) {
  GelmanRubinMonitor monitor(2);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    monitor.Add(0, rng.NextGaussian());        // centered at 0
    monitor.Add(1, 10.0 + rng.NextGaussian()); // centered at 10
  }
  EXPECT_GT(monitor.Psrf(), 2.0);
  EXPECT_FALSE(monitor.Converged());
}

TEST(GelmanRubinTest, PsrfApproachesOneFromAbove) {
  GelmanRubinMonitor monitor(3);
  Rng rng(7);
  // Chains with dispersed starts that mix toward the same distribution.
  double levels[3] = {-5.0, 0.0, 5.0};
  for (int i = 0; i < 5000; ++i) {
    for (size_t c = 0; c < 3; ++c) {
      levels[c] = 0.99 * levels[c];  // decaying transient
      monitor.Add(c, levels[c] + rng.NextGaussian());
    }
  }
  const double psrf = monitor.Psrf();
  // Sampling noise can push the estimator marginally below 1.
  EXPECT_GT(psrf, 0.99);
  EXPECT_LT(psrf, 1.1);
}

TEST(GelmanRubinTest, ConstantAgreeingChainsArePerfect) {
  GelmanRubinMonitor monitor(2);
  for (int i = 0; i < 200; ++i) {
    monitor.Add(0, 4.0);
    monitor.Add(1, 4.0);
  }
  EXPECT_DOUBLE_EQ(monitor.Psrf(), 1.0);
}

TEST(GelmanRubinTest, ConstantDisagreeingChainsNever) {
  GelmanRubinMonitor monitor(2);
  for (int i = 0; i < 200; ++i) {
    monitor.Add(0, 4.0);
    monitor.Add(1, 5.0);
  }
  EXPECT_TRUE(std::isinf(monitor.Psrf()));
}

TEST(GelmanRubinTest, UsesShortestChainLength) {
  GelmanRubinMonitor monitor(2);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) monitor.Add(0, rng.NextGaussian());
  for (int i = 0; i < 200; ++i) monitor.Add(1, rng.NextGaussian());
  EXPECT_EQ(monitor.chain_length(0), 2000u);
  EXPECT_EQ(monitor.chain_length(1), 200u);
  EXPECT_LT(monitor.Psrf(), 1.3);  // comparable despite unequal lengths
}

TEST(GelmanRubinTest, ResetClears) {
  GelmanRubinMonitor monitor(2);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    monitor.Add(0, rng.NextGaussian());
    monitor.Add(1, rng.NextGaussian());
  }
  monitor.Reset();
  EXPECT_EQ(monitor.chain_length(0), 0u);
  EXPECT_TRUE(std::isinf(monitor.Psrf()));
}

}  // namespace
}  // namespace wnw
