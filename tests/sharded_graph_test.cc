// Vertex-partitioned CSR storage: partitioner assignment rules, the
// FromGraph -> Flatten round trip that keeps Graph the single-shard special
// case, O(1) routed neighbor views, and the degree-balanced partitioner's
// imbalance bound on the synthetic generators (greedy LPT stays within 4/3
// of the fair share whenever no single vertex dominates a shard).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/sharded_graph.h"
#include "test_util.h"

namespace wnw {
namespace {

void ExpectSameTopology(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(testing::ToVec(a.Neighbors(u)), testing::ToVec(b.Neighbors(u)))
        << "node " << u;
  }
}

TEST(ShardPartitionTest, KeyRoundTripAndUnknownKeyIsStatus) {
  for (ShardPartition p :
       {ShardPartition::kModulo, ShardPartition::kRange,
        ShardPartition::kDegreeBalanced}) {
    auto parsed = ParseShardPartition(ShardPartitionKey(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(ParseShardPartition("round-robin").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedGraphTest, ModuloAssignsByResidue) {
  const Graph g = testing::MakeTestBA(50, 3);
  const auto sharded =
      ShardedGraph::FromGraph(g, 4, ShardPartition::kModulo).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(sharded.ShardOf(u), static_cast<int>(u % 4));
  }
}

TEST(ShardedGraphTest, RangePartitionIsContiguous) {
  const Graph g = testing::MakeTestBA(50, 3);
  const auto sharded =
      ShardedGraph::FromGraph(g, 4, ShardPartition::kRange).value();
  int last_shard = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(sharded.ShardOf(u), last_shard);  // never goes backwards
    last_shard = sharded.ShardOf(u);
  }
  EXPECT_EQ(sharded.ShardOf(0), 0);
  EXPECT_EQ(sharded.ShardOf(g.num_nodes() - 1), 3);
}

TEST(ShardedGraphTest, FromGraphFlattenRoundTripsEveryPartitioner) {
  const Graph g = testing::MakeTestBA(120, 4);
  for (ShardPartition p :
       {ShardPartition::kModulo, ShardPartition::kRange,
        ShardPartition::kDegreeBalanced}) {
    const auto sharded = ShardedGraph::FromGraph(g, 5, p).value();
    EXPECT_EQ(sharded.num_nodes(), g.num_nodes());
    EXPECT_EQ(sharded.num_edges(), g.num_edges());
    ExpectSameTopology(g, sharded.Flatten());
  }
}

TEST(ShardedGraphTest, RoutedNeighborsMatchTheFlatGraph) {
  const Graph g = testing::MakeTestBA(90, 3);
  const auto sharded =
      ShardedGraph::FromGraph(g, 7, ShardPartition::kDegreeBalanced).value();
  uint64_t endpoints = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(testing::ToVec(sharded.Neighbors(u)),
              testing::ToVec(g.Neighbors(u)));
    EXPECT_EQ(sharded.Degree(u), g.Degree(u));
    // Ownership bookkeeping: the routed shard really owns u at that index.
    const auto& shard = sharded.shard(sharded.ShardOf(u));
    EXPECT_EQ(shard.owned[sharded.LocalIndex(u)], u);
    endpoints += shard.NeighborsLocal(sharded.LocalIndex(u)).size();
  }
  EXPECT_EQ(endpoints, 2 * g.num_edges());
}

TEST(ShardedGraphTest, SingleShardIsTheSpecialCase) {
  const Graph g = testing::MakeHouseGraph();
  const auto sharded = ShardedGraph::FromGraph(g, 1).value();
  EXPECT_EQ(sharded.num_shards(), 1);
  EXPECT_EQ(sharded.shard(0).num_nodes(), g.num_nodes());
  EXPECT_DOUBLE_EQ(sharded.MaxEdgeImbalance(), 1.0);
  ExpectSameTopology(g, sharded.Flatten());
}

TEST(ShardedGraphTest, MoreShardsThanNodesLeavesEmptyShards) {
  const Graph g = testing::MakeHouseGraph();  // 5 nodes
  const auto sharded =
      ShardedGraph::FromGraph(g, 8, ShardPartition::kRange).value();
  EXPECT_EQ(sharded.num_shards(), 8);
  size_t total_owned = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    total_owned += sharded.shard(s).num_nodes();
  }
  EXPECT_EQ(total_owned, g.num_nodes());
  ExpectSameTopology(g, sharded.Flatten());
}

TEST(ShardedGraphTest, BadShardCountIsStatusNotCrash) {
  const Graph g = testing::MakeHouseGraph();
  EXPECT_EQ(ShardedGraph::FromGraph(g, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedGraph::FromGraph(g, -3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ShardedGraph::FromGraph(g, ShardedGraph::kMaxShards + 1).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ShardedGraphTest, DegreeBalancedMeetsTheLptBoundOnSyntheticGraphs) {
  // Greedy LPT keeps the hottest shard within 4/3 of the fair share when no
  // single vertex exceeds it — true for the scale-free generator at these
  // sizes (max degree << endpoints/shards) and trivially for the cycle.
  Rng rng(11);
  const Graph ba = MakeBarabasiAlbert(2000, 3, rng).value();
  for (int shards : {2, 4, 8}) {
    const auto sharded =
        ShardedGraph::FromGraph(ba, shards, ShardPartition::kDegreeBalanced)
            .value();
    ASSERT_LT(ba.max_degree(), sharded.MeanShardEndpoints());
    EXPECT_LE(sharded.MaxEdgeImbalance(), 4.0 / 3.0)
        << "shards=" << shards << ": " << sharded.DebugString();
  }
  const Graph cycle = MakeCycle(64).value();
  const auto sharded =
      ShardedGraph::FromGraph(cycle, 4, ShardPartition::kDegreeBalanced)
          .value();
  EXPECT_DOUBLE_EQ(sharded.MaxEdgeImbalance(), 1.0);
}

TEST(ShardedGraphTest, DebugStringReportsImbalance) {
  const Graph g = testing::MakeTestBA(100, 3);
  const auto sharded =
      ShardedGraph::FromGraph(g, 4, ShardPartition::kDegreeBalanced).value();
  const std::string s = sharded.DebugString();
  EXPECT_NE(s.find("shards=4"), std::string::npos) << s;
  EXPECT_NE(s.find("partition=degree"), std::string::npos) << s;
  EXPECT_NE(s.find("imbalance="), std::string::npos) << s;
}

}  // namespace
}  // namespace wnw
