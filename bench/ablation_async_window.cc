// Async-executor ablation: what does a bounded in-flight request window buy
// in wall-clock time? Runs the same pool of independent WALK-ESTIMATE
// walkers against ONE simulated 50ms-RTT service that REALLY sleeps its
// round trips (LatencyConfig::sleep_scale), sweeping the executor window:
//
//   window=1  — every fetch of every walker serializes through one in-flight
//               slot: the "wait" baseline, elapsed ≈ #fetches × RTT;
//   window=W  — up to W requests overlap: independent walks hide each
//               other's round trips and prefetch batches fan out, so
//               elapsed falls toward the longest single-walker chain;
//   sync      — no executor at all: each walker sleeps its own requests
//               serially but walkers overlap on their pool threads.
//
// The acceptance bar: window=8 must be >= 3x faster than window=1 in
// wall-clock elapsed_seconds, at IDENTICAL per-walker sample outputs and
// total query cost (the window changes when requests fly, never what they
// return or how they are billed).
//
// Env: WNW_TRIALS (walkers, default 6), WNW_SAMPLES (per walker, default 6),
//      WNW_SEED, WNW_SLEEP_SCALE (real sleep per simulated second,
//      default 0.1 => a 50ms RTT really sleeps 5ms).
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "datasets/social_datasets.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 1.0, 6);
  const double sleep_scale = EnvDouble("WNW_SLEEP_SCALE", 0.1);
  const SocialDataset ds = MakeSmallScaleFree(env.seed);
  const std::string spec =
      StrFormat("we:mhrw?diameter=%u", ds.diameter_estimate);

  LatencyConfig latency;
  latency.mean_ms = 50.0;
  latency.jitter_ms = 0.0;  // deterministic accounting across modes
  latency.sleep_scale = sleep_scale;

  WalkerPoolOptions base;
  base.walkers = env.trials;
  base.samples_per_walker = env.samples;
  base.session.seed = env.seed;
  base.session.latency = latency;

  TablePrinter table({"mode", "walkers", "samples", "query_cost", "waited_s",
                      "elapsed_s", "speedup", "identical"});
  table.AddComment(
      "Async in-flight window ablation (WE over MHRW, 50ms simulated RTT, "
      "really slept at sleep_scale)");
  table.AddComment(StrFormat(
      "dataset: %s; %d walkers x %llu samples; sleep_scale=%g; spec: %s",
      ds.graph.DebugString().c_str(), env.trials,
      static_cast<unsigned long long>(env.samples), sleep_scale,
      spec.c_str()));

  struct Mode {
    std::string label;
    int window;  // 0 = no executor ("sync")
  };
  std::vector<Mode> modes = {{"window=1", 1}, {"window=2", 2},
                             {"window=4", 4}, {"window=8", 8},
                             {"sync", 0}};

  std::vector<std::vector<NodeId>> baseline_samples;
  uint64_t baseline_cost = 0;
  double baseline_elapsed = 0.0;
  bool acceptance_ok = true;

  for (const Mode& mode : modes) {
    WalkerPoolOptions pool = base;
    if (mode.window > 0) {
      pool.session.async = AsyncOptions{.window = mode.window, .threads = 0};
    }
    auto result = RunWalkerPool(&ds.graph, spec, pool);
    if (!result.ok()) {
      std::fprintf(stderr, "error (%s): %s\n", mode.label.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    uint64_t total_cost = 0;
    double waited = 0.0;
    for (const SessionStats& s : result->stats) {
      total_cost += s.query_cost;
      waited += s.waited_seconds;
    }
    const bool first = baseline_samples.empty();
    if (first) {
      baseline_samples = result->samples;
      baseline_cost = total_cost;
      baseline_elapsed = result->elapsed_seconds;
    }
    const bool identical =
        result->samples == baseline_samples && total_cost == baseline_cost;
    if (!identical) acceptance_ok = false;
    const double speedup =
        result->elapsed_seconds > 0.0
            ? baseline_elapsed / result->elapsed_seconds
            : 0.0;
    if (mode.window == 8 && speedup < 3.0) acceptance_ok = false;
    table.AddRow({mode.label, TablePrinter::Cell(pool.walkers),
                  TablePrinter::Cell(env.samples),
                  TablePrinter::Cell(total_cost),
                  TablePrinter::CellPrec(waited, 3),
                  TablePrinter::CellPrec(result->elapsed_seconds, 3),
                  first ? std::string("1.00x")
                        : StrFormat("%.2fx", speedup),
                  identical ? "yes" : "NO"});
  }
  table.Print(stdout);
  std::printf("# acceptance (window=8 >= 3x over window=1, identical "
              "samples+cost): %s\n",
              acceptance_ok ? "PASS" : "FAIL");
  return acceptance_ok ? 0 : 1;
}
