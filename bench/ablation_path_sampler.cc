// §6.1 extension study: plain WALK-ESTIMATE (one candidate per walk) vs the
// path sampler (every node past the diameter step is a candidate). The path
// variant amortizes walk cost across several samples per walk; its samples
// are weakly correlated, which effective sample size quantifies.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 0.2), WNW_SEED.
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "datasets/social_datasets.h"
#include "estimation/aggregates.h"
#include "estimation/metrics.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 0.2);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);
  const double truth = ds.graph.average_degree();

  TablePrinter table({"sampler", "stride", "samples", "samples_per_walk",
                      "effective_samples", "api_calls_per_sample",
                      "rel_error"});
  table.AddComment("Section 6.1 extension: plain WE vs WE over walk paths "
                   "(GPlus-like, SRW input)");
  table.AddComment(StrFormat("dataset: %s; %d trials averaged",
                             ds.graph.DebugString().c_str(), env.trials));

  constexpr int kSamples = 200;
  struct Acc {
    double spw = 0, ess = 0, calls = 0, err = 0;
    int completed = 0;
  };

  auto finish = [&](const char* label, int stride, const Acc& acc) {
    if (acc.completed == 0) return;
    const double c = acc.completed;
    table.AddRow({label, TablePrinter::Cell(stride),
                  TablePrinter::Cell(kSamples),
                  TablePrinter::CellPrec(acc.spw / c, 4),
                  TablePrinter::CellPrec(acc.ess / c, 4),
                  TablePrinter::CellPrec(acc.calls / c, 5),
                  TablePrinter::CellPrec(acc.err / c, 3)});
  };

  // Returns true when the trial produced samples; *acc also gets the
  // samples-per-walk amortization figure from the session stats.
  auto measure = [&](const std::string& spec, uint64_t seed,
                     Acc* acc) -> bool {
    SessionOptions sopts;
    sopts.seed = seed;
    auto session =
        std::move(SamplingSession::Open(&ds.graph, spec, sopts)).value();
    std::vector<NodeId> samples;
    std::vector<double> chain;
    for (int i = 0; i < kSamples; ++i) {
      const auto s = session->Draw();
      if (!s.ok()) break;
      samples.push_back(s.value());
      chain.push_back(static_cast<double>(ds.graph.Degree(s.value())));
    }
    if (samples.empty()) return false;
    auto deg = [&](NodeId u) {
      return static_cast<double>(ds.graph.Degree(u));
    };
    const double est = EstimateAverage(samples, session->bias(), deg, deg);
    const SessionStats stats = session->Stats();
    acc->ess += chain.size() >= 4 ? EffectiveSampleSize(chain)
                                  : static_cast<double>(chain.size());
    acc->calls += static_cast<double>(stats.total_queries) /
                  static_cast<double>(samples.size());
    acc->err += RelativeError(est, truth);
    acc->spw += stats.samples_per_walk;
    acc->completed++;
    return true;
  };

  Acc plain_acc;
  const std::string plain_spec = StrFormat(
      "we:srw?diameter=%u&crawl_hops=1", ds.diameter_estimate);
  for (int trial = 0; trial < env.trials; ++trial) {
    const uint64_t seed = Mix64(env.seed + trial);
    measure(plain_spec, seed + 1, &plain_acc);
  }
  finish("WE(plain)", 1, plain_acc);

  for (const int stride : {1, 2, 4}) {
    Acc acc;
    const std::string path_spec = StrFormat(
        "we-path:srw?diameter=%u&crawl_hops=1&stride=%d",
        ds.diameter_estimate, stride);
    for (int trial = 0; trial < env.trials; ++trial) {
      const uint64_t seed = Mix64(env.seed + 100 + trial + stride);
      measure(path_spec, seed + 1, &acc);
    }
    finish("WE-Path", stride, acc);
  }
  table.Print(stdout);
  return 0;
}
