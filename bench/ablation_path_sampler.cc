// §6.1 extension study: plain WALK-ESTIMATE (one candidate per walk) vs the
// path sampler (every node past the diameter step is a candidate). The path
// variant amortizes walk cost across several samples per walk; its samples
// are weakly correlated, which effective sample size quantifies.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 0.2), WNW_SEED.
#include <cstdio>
#include <vector>

#include "core/path_sampler.h"
#include "core/walk_estimate.h"
#include "datasets/social_datasets.h"
#include "estimation/aggregates.h"
#include "estimation/metrics.h"
#include "experiments/harness.h"
#include "mcmc/transition.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 0.2);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);
  const double truth = ds.graph.average_degree();
  SimpleRandomWalk srw;

  TablePrinter table({"sampler", "stride", "samples", "samples_per_walk",
                      "effective_samples", "api_calls_per_sample",
                      "rel_error"});
  table.AddComment("Section 6.1 extension: plain WE vs WE over walk paths "
                   "(GPlus-like, SRW input)");
  table.AddComment(StrFormat("dataset: %s; %d trials averaged",
                             ds.graph.DebugString().c_str(), env.trials));

  constexpr int kSamples = 200;
  struct Acc {
    double spw = 0, ess = 0, calls = 0, err = 0;
    int completed = 0;
  };

  auto finish = [&](const char* label, int stride, const Acc& acc) {
    if (acc.completed == 0) return;
    const double c = acc.completed;
    table.AddRow({label, TablePrinter::Cell(stride),
                  TablePrinter::Cell(kSamples),
                  TablePrinter::CellPrec(acc.spw / c, 4),
                  TablePrinter::CellPrec(acc.ess / c, 4),
                  TablePrinter::CellPrec(acc.calls / c, 5),
                  TablePrinter::CellPrec(acc.err / c, 3)});
  };

  // Returns true when the trial produced samples; *acc gets everything but
  // the samples-per-walk figure (sampler-type specific, added by callers).
  auto measure = [&](Sampler& sampler, AccessInterface& access,
                     Acc* acc) -> bool {
    std::vector<NodeId> samples;
    std::vector<double> chain;
    for (int i = 0; i < kSamples; ++i) {
      const auto s = sampler.Draw();
      if (!s.ok()) break;
      samples.push_back(s.value());
      chain.push_back(static_cast<double>(ds.graph.Degree(s.value())));
    }
    if (samples.empty()) return false;
    auto deg = [&](NodeId u) {
      return static_cast<double>(ds.graph.Degree(u));
    };
    const double est =
        EstimateAverage(samples, TargetBias::kStationaryWeighted, deg, deg);
    acc->ess += chain.size() >= 4 ? EffectiveSampleSize(chain)
                                  : static_cast<double>(chain.size());
    acc->calls += static_cast<double>(access.total_queries()) /
                  static_cast<double>(samples.size());
    acc->err += RelativeError(est, truth);
    acc->completed++;
    return true;
  };

  Acc plain_acc;
  for (int trial = 0; trial < env.trials; ++trial) {
    const uint64_t seed = Mix64(env.seed + trial);
    Rng start_rng(seed);
    const NodeId start =
        static_cast<NodeId>(start_rng.NextBounded(ds.graph.num_nodes()));
    AccessInterface access(&ds.graph);
    WalkEstimateOptions opts;
    opts.diameter_bound = static_cast<int>(ds.diameter_estimate);
    opts.estimate.crawl_hops = 1;
    WalkEstimateSampler sampler(&access, &srw, start, opts, seed + 1);
    if (measure(sampler, access, &plain_acc)) {
      // Plain WE: one candidate per walk, so samples/walk = acceptance.
      plain_acc.spw += sampler.acceptance_rate();
    }
  }
  finish("WE(plain)", 1, plain_acc);

  for (const int stride : {1, 2, 4}) {
    Acc acc;
    for (int trial = 0; trial < env.trials; ++trial) {
      const uint64_t seed = Mix64(env.seed + 100 + trial + stride);
      Rng start_rng(seed);
      const NodeId start =
          static_cast<NodeId>(start_rng.NextBounded(ds.graph.num_nodes()));
      AccessInterface access(&ds.graph);
      WalkEstimatePathSampler::Options opts;
      opts.base.diameter_bound = static_cast<int>(ds.diameter_estimate);
      opts.base.estimate.crawl_hops = 1;
      opts.stride = stride;
      WalkEstimatePathSampler sampler(&access, &srw, start, opts, seed + 1);
      if (measure(sampler, access, &acc)) {
        acc.spw += sampler.samples_per_walk();
      }
    }
    finish("WE-Path", stride, acc);
  }
  table.Print(stdout);
  return 0;
}
