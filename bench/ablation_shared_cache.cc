// Access-layer ablation: what does the cross-session QueryCache buy? Runs
// the same parallel error-vs-cost experiment against a 50ms +/- 10ms
// latency-simulating backend in three modes:
//
//   no-latency    — the paper's raw protocol, for the query-cost reference;
//   isolated      — every trial owns a private latency stack and pays for
//                   every query (the paper's protocol, but slow like the
//                   real service);
//   shared-cache  — parallel trials against one stack hand each other
//                   neighbor lists (the "Leveraging History" effect,
//                   Zhou et al. PVLDB'15).
//
// Expected outcome: shared-cache mean query cost (distinct billed fetches
// per trial) drops well below the isolated baseline at equal relative
// error, and the simulated waiting drops with it — queries served from
// history pay no network round trips.
//
// Env: WNW_TRIALS (default 8), WNW_SCALE (default 0.15), WNW_SEED.
#include <cstdio>
#include <memory>

#include "access/query_cache.h"
#include "datasets/social_datasets.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(8, 0.15);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);

  ErrorVsCostConfig base;
  base.sample_counts = {10, 20, 40};
  base.trials = env.trials;
  base.seed = env.seed;
  base.sampler_spec = StrFormat("we:mhrw?diameter=%u", ds.diameter_estimate);

  LatencyConfig latency;
  latency.mean_ms = 50.0;
  latency.jitter_ms = 10.0;

  TablePrinter table({"mode", "samples", "query_cost", "total_api_calls",
                      "waited_s", "rel_error", "cache_hit_rate"});
  table.AddComment("Shared QueryCache ablation (WE over MHRW, 50ms +/- 10ms "
                   "simulated latency)");
  table.AddComment(StrFormat("dataset: %s; %d parallel trials per mode",
                             ds.graph.DebugString().c_str(), env.trials));

  struct Mode {
    const char* label;
    bool with_latency;
    bool shared_cache;
  };
  for (const Mode mode : {Mode{"no-latency", false, false},
                          Mode{"isolated", true, false},
                          Mode{"shared-cache", true, true}}) {
    ErrorVsCostConfig config = base;
    std::shared_ptr<QueryCache> cache;
    if (mode.with_latency) config.latency = latency;
    if (mode.shared_cache) {
      cache = std::make_shared<QueryCache>();
      config.shared_cache = cache;
    }
    const auto curve = RunErrorVsCost(ds, {"avg_deg", ""}, config);
    if (!curve.ok()) {
      std::fprintf(stderr, "error: %s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (const auto& p : *curve) {
      if (p.completed_trials == 0) continue;
      table.AddRow({mode.label, TablePrinter::Cell(p.samples),
                    TablePrinter::CellPrec(p.mean_query_cost, 6),
                    TablePrinter::CellPrec(p.mean_total_queries, 6),
                    TablePrinter::CellPrec(p.mean_waited_seconds, 4),
                    TablePrinter::CellPrec(p.mean_rel_error, 4),
                    cache ? TablePrinter::CellPrec(cache->hit_rate(), 3)
                          : std::string("-")});
    }
  }
  table.Print(stdout);
  return 0;
}
