// Sharded-origin ablation: what does partitioning the simulated OSN across
// N single-threaded origin servers buy in wall-clock time? Runs the same
// pool of independent WALK-ESTIMATE walkers against ONE simulated service
// whose 50ms round trips REALLY sleep (LatencyConfig::sleep_scale), sweeping
// the shard count:
//
//   shards=1 — every request of every walker queues on one shard's service
//              lock: the "single origin" baseline the ISSUE motivates —
//              elapsed ≈ total fetches × RTT no matter how wide the fetch
//              executor's window is;
//   shards=N — requests route by vertex partition to N independent servers
//              (each with its own lock, RNG stream, limiter, and latency
//              stack): walkers queue only behind requests for the SAME
//              shard, so elapsed falls toward total/N × RTT, capped by the
//              partition's edge imbalance.
//
// Two acceptance bars (both enforced, nonzero exit on violation):
//   1. shards=8 is >= 3x faster than shards=1 in wall-clock elapsed at
//      byte-identical per-walker samples and identical total query cost —
//      sharding changes where queries are answered, never what they return
//      or how they are billed;
//   2. every registered sampler draws identically on the unsharded backend
//      and on ShardedBackend(shards=1..8) for a fixed seed (checked without
//      sleeps, so the sweep stays fast).
//
// Env: WNW_TRIALS (walkers, default 8), WNW_SAMPLES (per walker, default 3),
//      WNW_SEED, WNW_SLEEP_SCALE (real sleep per simulated second,
//      default 0.1 => a 50ms RTT really sleeps 5ms).
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"
#include "datasets/social_datasets.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(8, 1.0, 3);
  const double sleep_scale = EnvDouble("WNW_SLEEP_SCALE", 0.1);
  const SocialDataset ds = MakeSmallScaleFree(env.seed);
  const std::string spec =
      StrFormat("we:mhrw?diameter=%u", ds.diameter_estimate);

  LatencyConfig latency;
  latency.mean_ms = 50.0;
  latency.jitter_ms = 0.0;  // deterministic accounting across shard counts
  latency.sleep_scale = sleep_scale;

  WalkerPoolOptions base;
  base.walkers = env.trials;
  base.samples_per_walker = env.samples;
  base.session.seed = env.seed;
  base.session.latency = latency;
  // One executor wide enough that the shard service locks — not the fetch
  // window — are the only serialization left.
  base.session.async = AsyncOptions{.window = 16, .threads = 16};

  TablePrinter table({"shards", "walkers", "samples", "query_cost",
                      "waited_s", "elapsed_s", "speedup", "identical"});
  table.AddComment(
      "Sharded-origin ablation (WE over MHRW, 50ms simulated RTT really "
      "slept at sleep_scale, window=16)");
  table.AddComment(StrFormat(
      "dataset: %s; %d walkers x %llu samples; sleep_scale=%g; spec: %s",
      ds.graph.DebugString().c_str(), env.trials,
      static_cast<unsigned long long>(env.samples), sleep_scale,
      spec.c_str()));

  std::vector<std::vector<NodeId>> baseline_samples;
  uint64_t baseline_cost = 0;
  double shards1_elapsed = 0.0;
  bool acceptance_ok = true;

  for (const int shards : {1, 2, 4, 8}) {
    WalkerPoolOptions pool = base;
    pool.session.shards = shards;
    pool.session.partition = ShardPartition::kModulo;
    auto result = RunWalkerPool(&ds.graph, spec, pool);
    if (!result.ok()) {
      std::fprintf(stderr, "error (shards=%d): %s\n", shards,
                   result.status().ToString().c_str());
      return 1;
    }
    uint64_t total_cost = 0;
    double waited = 0.0;
    for (const SessionStats& s : result->stats) {
      total_cost += s.query_cost;
      waited += s.waited_seconds;
    }
    const bool first = baseline_samples.empty();
    if (first) {
      baseline_samples = result->samples;
      baseline_cost = total_cost;
      shards1_elapsed = result->elapsed_seconds;
    }
    const bool identical =
        result->samples == baseline_samples && total_cost == baseline_cost;
    if (!identical) acceptance_ok = false;
    const double speedup = result->elapsed_seconds > 0.0
                               ? shards1_elapsed / result->elapsed_seconds
                               : 0.0;
    if (shards == 8 && speedup < 3.0) acceptance_ok = false;
    table.AddRow({TablePrinter::Cell(shards),
                  TablePrinter::Cell(pool.walkers),
                  TablePrinter::Cell(env.samples),
                  TablePrinter::Cell(total_cost),
                  TablePrinter::CellPrec(waited, 3),
                  TablePrinter::CellPrec(result->elapsed_seconds, 3),
                  first ? std::string("1.00x") : StrFormat("%.2fx", speedup),
                  identical ? "yes" : "NO"});
  }
  table.Print(stdout);

  // Bar 2: every registered sampler, identical draws across shard counts
  // (no latency, no sleeps — this is a correctness sweep, not a timing one).
  bool sweep_ok = true;
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    const std::string base_spec =
        name + ":mhrw" + (name.rfind("we", 0) == 0 ? "?diameter=4" : "");
    SessionOptions opts;
    opts.seed = env.seed + 17;
    auto baseline = SamplingSession::Open(&ds.graph, base_spec, opts);
    if (!baseline.ok()) {
      std::fprintf(stderr, "error (%s): %s\n", base_spec.c_str(),
                   baseline.status().ToString().c_str());
      return 1;
    }
    std::vector<NodeId> want;
    if (!(*baseline)->DrawInto(&want, 8).ok()) return 1;
    const char sep = base_spec.find('?') == std::string::npos ? '?' : '&';
    for (const int shards : {1, 2, 4, 8}) {
      const std::string sharded_spec =
          base_spec + sep + "shards=" + std::to_string(shards);
      auto session = SamplingSession::Open(&ds.graph, sharded_spec, opts);
      if (!session.ok()) {
        std::fprintf(stderr, "error (%s): %s\n", sharded_spec.c_str(),
                     session.status().ToString().c_str());
        return 1;
      }
      std::vector<NodeId> got;
      if (!(*session)->DrawInto(&got, 8).ok()) return 1;
      if (got != want) {
        sweep_ok = false;
        std::fprintf(stderr, "MISMATCH: %s draws differently than %s\n",
                     sharded_spec.c_str(), base_spec.c_str());
      }
    }
    std::printf("# sampler sweep: %-8s identical across shards=1..8: %s\n",
                name.c_str(), sweep_ok ? "yes" : "NO");
  }
  if (!sweep_ok) acceptance_ok = false;

  std::printf("# acceptance (shards=8 >= 3x over shards=1 at identical "
              "samples+cost; all samplers identical): %s\n",
              acceptance_ok ? "PASS" : "FAIL");
  return acceptance_ok ? 0 : 1;
}
