// Table 1: exact sample bias on the small scale-free network (1000 nodes,
// ~6951 edges): l-inf and KL distance between the theoretical target
// distribution (uniform) and the *measured* sampling distributions of SRW
// (Geweke-monitored, uncorrected) and WE.
//
// Paper numbers for reference:
//   Dist(Theo, SRW):  l-inf 0.0081,  KL 0.47529
//   Dist(Theo, WE):   l-inf 0.00549, KL 0.01834
// Shape to reproduce: WE at least an order of magnitude closer in KL and
// clearly closer in l-inf.
//
// Env: WNW_SAMPLES (default 100000), WNW_SEED, WNW_THREADS.
#include <cstdio>

#include "datasets/social_datasets.h"
#include "estimation/metrics.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0, /*samples=*/100000);
  const SocialDataset ds = MakeSmallScaleFree(env.seed);
  const std::vector<double> uniform(ds.graph.num_nodes(),
                                    1.0 / ds.graph.num_nodes());

  // SRW with the Geweke monitor, sampling distribution measured empirically
  // (its stationary distribution is degree-proportional: the uncorrected
  // bias the paper quantifies).
  BurnInSampler::Options bopts;
  bopts.max_steps = 10000;
  const SamplerSpec srw = MakeBurnInSpec("srw", bopts);
  const auto srw_run =
      RunEmpiricalDistribution(ds, srw, env.samples, env.seed + 1);

  // WE with MHRW input: corrected to uniform.
  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 2;
  const SamplerSpec we = MakeWalkEstimateSpec("mhrw", wopts);
  const auto we_run =
      RunEmpiricalDistribution(ds, we, env.samples, env.seed + 2);

  TablePrinter table({"distance_measure", "dist_theo_srw", "dist_theo_we"});
  table.AddComment("Table 1: distance between theoretical (uniform) and "
                   "measured sampling distributions");
  table.AddComment(StrFormat(
      "dataset: %s; %llu samples per sampler", ds.name.c_str(),
      static_cast<unsigned long long>(env.samples)));
  table.AddComment("paper: linf 0.0081 vs 0.00549; KL 0.47529 vs 0.01834");
  table.AddRow({"linf",
                TablePrinter::CellPrec(
                    LInfDistance(srw_run.empirical_pmf, uniform), 4),
                TablePrinter::CellPrec(
                    LInfDistance(we_run.empirical_pmf, uniform), 4)});
  table.AddRow({"kl_divergence",
                TablePrinter::CellPrec(
                    KLDivergence(srw_run.empirical_pmf, uniform), 4),
                TablePrinter::CellPrec(
                    KLDivergence(we_run.empirical_pmf, uniform), 4)});
  table.AddRow({"total_variation",
                TablePrinter::CellPrec(
                    TotalVariationDistance(srw_run.empirical_pmf, uniform), 4),
                TablePrinter::CellPrec(
                    TotalVariationDistance(we_run.empirical_pmf, uniform),
                    4)});
  table.Print(stdout);
  return 0;
}
