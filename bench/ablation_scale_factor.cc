// §6.3.2 design-choice study: the acceptance-rejection scale factor. The
// paper bootstraps min_v p(v)/q(v) as the 10th percentile of observed
// probability-estimate ratios; lower percentiles cut bias but reject more
// (higher cost), higher percentiles accept more but bias the sample.
//
// Sweep: percentile in {0.01, 0.05, 0.10, 0.25, 0.50, 0.90} on the small
// scale-free graph; report acceptance rate, cost per sample, and the
// measured distribution's distance from the uniform target.
//
// Env: WNW_SAMPLES (default 30000), WNW_SEED, WNW_THREADS.
#include <cstdio>

#include "datasets/social_datasets.h"
#include "estimation/metrics.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0, /*samples=*/30000);
  const SocialDataset ds = MakeSmallScaleFree(env.seed);
  const std::vector<double> uniform(ds.graph.num_nodes(),
                                    1.0 / ds.graph.num_nodes());

  TablePrinter table({"percentile", "tv_vs_target", "linf_vs_target",
                      "kl_vs_target", "cost_per_sample"});
  table.AddComment("Section 6.3.2: rejection scale percentile sweep "
                   "(WE over MHRW, uniform target)");
  table.AddComment(StrFormat("dataset: %s; %llu samples per setting",
                             ds.name.c_str(),
                             static_cast<unsigned long long>(env.samples)));
  for (const double percentile : {0.01, 0.05, 0.10, 0.25, 0.50, 0.90}) {
    WalkEstimateOptions opts;
    opts.diameter_bound = static_cast<int>(ds.diameter_estimate);
    opts.rejection.percentile = percentile;
    const auto spec = MakeWalkEstimateSpec("mhrw", opts);
    const auto run = RunEmpiricalDistribution(
        ds, spec, env.samples, env.seed + static_cast<uint64_t>(percentile * 1000));
    table.AddRow(
        {TablePrinter::CellPrec(percentile, 3),
         TablePrinter::CellPrec(
             TotalVariationDistance(run.empirical_pmf, uniform), 4),
         TablePrinter::CellPrec(LInfDistance(run.empirical_pmf, uniform), 4),
         TablePrinter::CellPrec(KLDivergence(run.empirical_pmf, uniform), 4),
         TablePrinter::CellPrec(static_cast<double>(run.total_query_cost) /
                                    static_cast<double>(run.total_samples),
                                4)});
  }
  table.Print(stdout);
  return 0;
}
