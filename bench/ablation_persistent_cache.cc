// Persistent-cache ablation + acceptance gate: does saving the QueryCache
// to disk and reloading it in a second run actually buy the cross-RUN
// history reuse the storage layer exists for?
//
//   run 1 (cold)  — parallel error-vs-cost trials share a fresh QueryCache;
//                   every first touch pays a backend query. The cache is
//                   then persisted with QueryCache::Save.
//   run 2 (warm)  — a brand-new QueryCache loads that file and the SAME
//                   experiment (same seeds) runs again.
//
// The gate: both runs must produce IDENTICAL estimates at every checkpoint
// (the cache returns the same deterministic responses the backend would),
// and the warm run's mean query cost — the paper's distinct-node metric —
// must be materially lower (< half) than the cold run's. Exits nonzero on
// any violation, so CI catches a persistence format that silently loses
// entries or (worse) changes responses.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 0.12), WNW_SEED.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "access/query_cache.h"
#include "datasets/social_datasets.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 0.12);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);

  ErrorVsCostConfig config;
  config.sample_counts = {10, 20, 40};
  config.trials = env.trials;
  config.seed = env.seed;
  config.sampler_spec = StrFormat("we:mhrw?diameter=%u", ds.diameter_estimate);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string cache_path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                                 "/wnw_ablation_persistent_cache.wnwcache";
  std::remove(cache_path.c_str());

  auto run = [&](std::shared_ptr<QueryCache> cache)
      -> Result<std::vector<CurvePoint>> {
    ErrorVsCostConfig mode = config;
    mode.shared_cache = std::move(cache);
    return RunErrorVsCost(ds, {"avg_deg", ""}, mode);
  };

  // Run 1: cold cache, then persist it.
  auto cold_cache = std::make_shared<QueryCache>();
  const auto cold = run(cold_cache);
  if (!cold.ok()) {
    std::fprintf(stderr, "error: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const Status saved = cold_cache->Save(cache_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }

  // Run 2: a different process would do exactly this — fresh cache, Load.
  auto warm_cache = std::make_shared<QueryCache>();
  const Status loaded = warm_cache->Load(cache_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  const auto warm = run(warm_cache);
  if (!warm.ok()) {
    std::fprintf(stderr, "error: %s\n", warm.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"run", "samples", "query_cost", "waited_s", "rel_error",
                      "cache_entries"});
  table.AddComment(
      "Persistent QueryCache warm start (WE over MHRW; run 2 reloads run "
      "1's cache from disk)");
  table.AddComment(StrFormat(
      "dataset: %s; %d parallel trials per run; cache file: %s (%llu "
      "entries persisted)",
      ds.graph.DebugString().c_str(), env.trials, cache_path.c_str(),
      static_cast<unsigned long long>(cold_cache->size())));
  struct Run {
    const char* label;
    const std::vector<CurvePoint>* points;
    const QueryCache* cache;
  };
  for (const Run run_row : {Run{"cold", &*cold, cold_cache.get()},
                            Run{"warm", &*warm, warm_cache.get()}}) {
    for (const auto& p : *run_row.points) {
      if (p.completed_trials == 0) continue;
      table.AddRow({run_row.label, TablePrinter::Cell(p.samples),
                    TablePrinter::CellPrec(p.mean_query_cost, 6),
                    TablePrinter::CellPrec(p.mean_waited_seconds, 4),
                    TablePrinter::CellPrec(p.mean_rel_error, 4),
                    TablePrinter::Cell(static_cast<int64_t>(
                        run_row.cache->size()))});
    }
  }
  table.Print(stdout);

  // --- the gate --------------------------------------------------------------
  bool ok = true;
  for (size_t i = 0; i < cold->size(); ++i) {
    const CurvePoint& c = (*cold)[i];
    const CurvePoint& w = (*warm)[i];
    if (c.completed_trials == 0 || c.completed_trials != w.completed_trials) {
      std::fprintf(stderr, "GATE: checkpoint %d lost trials (%d vs %d)\n",
                   c.samples, c.completed_trials, w.completed_trials);
      ok = false;
      continue;
    }
    // Identical seeds + deterministic responses => identical estimates.
    if (c.mean_rel_error != w.mean_rel_error) {
      std::fprintf(stderr,
                   "GATE: estimates diverged at %d samples (rel_error %.12f "
                   "cold vs %.12f warm) — the persisted cache changed "
                   "responses\n",
                   c.samples, c.mean_rel_error, w.mean_rel_error);
      ok = false;
    }
    if (!(w.mean_query_cost < c.mean_query_cost) ||
        !(w.mean_query_cost <= 0.5 * c.mean_query_cost)) {
      std::fprintf(stderr,
                   "GATE: warm start did not materially cut query cost at %d "
                   "samples (%.1f cold vs %.1f warm; need warm < cold/2)\n",
                   c.samples, c.mean_query_cost, w.mean_query_cost);
      ok = false;
    }
  }
  std::remove(cache_path.c_str());
  if (!ok) return 1;
  std::printf(
      "# GATE OK: warm run reused the persisted history (identical "
      "estimates, query cost cut by more than half)\n");
  return 0;
}
