// §5.3 design-choice study: the WS-BW exploration floor epsilon. The
// weighted backward sampler assigns eps/|C| to every candidate (keeping the
// estimator unbiased) and splits the remaining 1-eps by forward hit counts.
// Small eps trusts the history (low variance once history is rich); eps = 1
// degenerates to the uniform UNBIASED-ESTIMATE.
//
// Sweep: eps in {0.02, 0.1, 0.3, 0.6, 1.0}; measured: the empirical
// variance of single-backward-walk estimates of p_t for probe nodes.
//
// Env: WNW_TRIALS (reps factor, default 30000 draws), WNW_SEED.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/backward_estimator.h"
#include "core/crawler.h"
#include "datasets/social_datasets.h"
#include "experiments/harness.h"
#include "graph/generators.h"
#include "mcmc/walker.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0, /*samples=*/30000);
  Rng gen_rng(env.seed);
  const Graph g = MakeBarabasiAlbert(300, 3, gen_rng).value();
  auto design = MakeTransitionDesign("srw");
  const NodeId start = 0;
  const int t = 9;

  // Forward history shared by all eps settings.
  AccessInterface access(&g);
  const CrawlBall ball = CrawlBall::Crawl(access, *design, start, 2);
  HitCountHistory history(t);
  Rng walk_rng(env.seed + 1);
  std::vector<NodeId> path;
  for (int w = 0; w < 3000; ++w) {
    Walk(access, *design, start, t, walk_rng, &path);
    history.RecordWalk(path);
  }
  // Probe nodes: frequently-hit endpoints of the forward walks.
  std::vector<NodeId> probes;
  for (NodeId u = 0; u < g.num_nodes() && probes.size() < 4; ++u) {
    if (history.Count(u, t) >= 10) probes.push_back(u);
  }

  TablePrinter table({"epsilon", "mean_estimate", "estimator_variance",
                      "relative_std_error"});
  table.AddComment("Section 5.3: WS-BW epsilon sweep (BA n=300, SRW, t=9, "
                   "crawl h=2); variance pooled over probe nodes");
  table.AddComment(StrFormat("%llu backward walks per (eps, probe)",
                             static_cast<unsigned long long>(env.samples)));
  for (const double eps : {0.02, 0.1, 0.3, 0.6, 1.0}) {
    BackwardWalkOptions opts;
    opts.weighted = true;
    opts.epsilon = eps;
    const BackwardEstimator estimator(design.get(), start, opts, &ball,
                                      &history);
    double pooled_mean = 0, pooled_var = 0;
    for (const NodeId u : probes) {
      Rng rng(Mix64(env.seed ^ static_cast<uint64_t>(eps * 1e6) ^ u));
      double sum = 0, sq = 0;
      for (uint64_t r = 0; r < env.samples; ++r) {
        const double x = estimator.EstimateOnce(access, u, t, rng);
        sum += x;
        sq += x * x;
      }
      const double mean = sum / static_cast<double>(env.samples);
      pooled_mean += mean;
      pooled_var +=
          std::max(0.0, sq / static_cast<double>(env.samples) - mean * mean);
    }
    pooled_mean /= static_cast<double>(probes.size());
    pooled_var /= static_cast<double>(probes.size());
    table.AddRow({TablePrinter::CellPrec(eps, 3),
                  TablePrinter::CellPrec(pooled_mean, 4),
                  TablePrinter::CellPrec(pooled_var, 4),
                  TablePrinter::CellPrec(
                      pooled_mean > 0
                          ? std::sqrt(pooled_var) / pooled_mean
                          : 0.0,
                      4)});
  }
  table.Print(stdout);
  return 0;
}
