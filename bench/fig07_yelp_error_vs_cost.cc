// Figure 7: relative error of AVG estimations vs query cost on the Yelp
// (-like) user graph. Subfigures: (a) average degree, (b) average stars,
// (c) average shortest-path length (landmark attribute; see DESIGN.md),
// (d) average local clustering coefficient — SRW baseline vs WE(SRW).
//
// Paper shape to reproduce: WE reaches a given relative error at lower
// query cost across all four aggregates.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 1.0 = paper size), WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(6, 1.0);
  const SocialDataset ds = MakeYelpLike(env.scale, env.seed);

  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 2;  // paper: h = 2 for Yelp
  // Sparse graph, long walk: spend more backward walks per estimate (see
  // EXPERIMENTS.md calibration note).
  wopts.estimate.base_reps = 12;
  wopts.estimate.max_extra_reps = 24;
  BurnInSampler::Options bopts;
  bopts.max_steps = 20000;

  std::vector<Subfigure> subs;
  const std::vector<AggregateSpec> aggregates = {
      {"avg_degree", ""},
      {"avg_stars", "stars"},
      {"avg_shortest_path", "path_len"},
      {"avg_clustering", "clustering"},
  };
  const char* tags[] = {"(a)", "(b)", "(c)", "(d)"};
  for (size_t i = 0; i < aggregates.size(); ++i) {
    subs.push_back({tags[i], MakeBurnInSpec("srw", bopts), aggregates[i]});
    subs.push_back({tags[i], MakeWalkEstimateSpec("srw", wopts),
                    aggregates[i]});
  }

  ErrorVsCostConfig config;
  config.sample_counts = {10, 20, 40, 80, 160};
  config.trials = env.trials;
  config.seed = env.seed;
  bench::RunErrorBench("Figure 7: relative error vs query cost, Yelp-like",
                       ds, subs, config);
  return 0;
}
