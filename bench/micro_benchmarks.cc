// Google-benchmark microbenchmarks for the hot substrate paths: CSR
// iteration, walk steps (SRW/MHRW), weighted sampling, backward estimation,
// and the analysis tooling. These guard the library's performance envelope
// rather than reproduce a paper artifact.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "access/access_interface.h"
#include "access/remote_backend.h"
#include "access/sharded_backend.h"
#include "net/server.h"
#include "net/wire.h"
#include "storage/snapshot.h"
#include "util/check.h"
#include "core/backward_estimator.h"
#include "core/crawler.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mcmc/convergence.h"
#include "mcmc/distribution.h"
#include "mcmc/transition.h"
#include "mcmc/walker.h"
#include "random/alias_table.h"
#include "random/sampling.h"

namespace wnw {
namespace {

const Graph& BenchGraph() {
  static const Graph g = [] {
    Rng rng(42);
    return MakeBarabasiAlbert(100000, 8, rng).value();
  }();
  return g;
}

void BM_GraphGenerateBA(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    auto g = MakeBarabasiAlbert(n, 8, rng).value();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphGenerateBA)->Arg(10000)->Arg(100000);

void BM_NeighborIteration(benchmark::State& state) {
  const Graph& g = BenchGraph();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.Neighbors(u)) sum += v;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NeighborIteration);

// BenchGraph() round-tripped through the snapshot file and mmap'd back —
// identical adjacency bits, file-backed pages.
const Graph& BenchMmapGraph() {
  static const Graph g = [] {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                             "/wnw_micro_benchmarks.snap";
    WNW_CHECK(WriteGraphSnapshot(BenchGraph(), path).ok());
    auto loaded = LoadGraphSnapshot(path);
    WNW_CHECK(loaded.ok());
    WNW_CHECK(loaded->graph.storage_mapped());
    std::remove(path.c_str());  // POSIX: the mapping outlives the unlink
    return loaded->graph;
  }();
  return g;
}

// The storage-view cost question: does serving the CSR from an mmap'd
// snapshot slow down the sequential neighbor scan vs the heap arrays? After
// first touch (the static init walks the file once via checksum + CSR
// validation, so pages are warm) the two should be indistinguishable — the
// Array<T> view compiles to the same data-pointer load either way.
void BM_NeighborsHeap(benchmark::State& state) {
  const Graph& g = BenchGraph();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.Neighbors(u)) sum += v;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NeighborsHeap);

void BM_NeighborsMmap(benchmark::State& state) {
  const Graph& g = BenchMmapGraph();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.Neighbors(u)) sum += v;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_NeighborsMmap);

void BM_BfsFullGraph(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    auto dist = BfsDistances(g, 0);
    benchmark::DoNotOptimize(dist[g.num_nodes() - 1]);
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_BfsFullGraph);

void BM_SrwSteps(benchmark::State& state) {
  const Graph& g = BenchGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  Rng rng(3);
  NodeId cur = 0;
  for (auto _ : state) {
    cur = srw.Step(access, cur, rng);
    benchmark::DoNotOptimize(cur);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SrwSteps);

void BM_MhrwSteps(benchmark::State& state) {
  const Graph& g = BenchGraph();
  AccessInterface access(&g);
  MetropolisHastingsWalk mhrw;
  Rng rng(4);
  NodeId cur = 0;
  for (auto _ : state) {
    cur = mhrw.Step(access, cur, rng);
    benchmark::DoNotOptimize(cur);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MhrwSteps);

void BM_BackendFetchArena(benchmark::State& state) {
  // The origin hot path after the arena refactor: an unrestricted fetch is
  // a span into the CSR adjacency arena — no copy, no allocation.
  const Graph& g = BenchGraph();
  InMemoryBackend backend(&g);
  NodeId u = 0;
  for (auto _ : state) {
    auto reply = backend.FetchNeighbors(u);
    benchmark::DoNotOptimize(reply->neighbors.data());
    u = (u + 1) % static_cast<NodeId>(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendFetchArena);

void BM_BackendFetchCopyOut(benchmark::State& state) {
  // The pre-refactor behavior for comparison: materialize every reply into
  // an owned vector (what FetchNeighbors used to do unconditionally). The
  // delta against BM_BackendFetchArena is the per-fetch allocation+copy the
  // arena eliminated.
  const Graph& g = BenchGraph();
  InMemoryBackend backend(&g);
  NodeId u = 0;
  for (auto _ : state) {
    auto reply = backend.FetchNeighbors(u);
    const std::vector<NodeId> list = reply->TakeNeighbors();
    benchmark::DoNotOptimize(list.data());
    u = (u + 1) % static_cast<NodeId>(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendFetchCopyOut);

void BM_LocalCacheSpan(benchmark::State& state) {
  // The span-stable session cache: a first-touch sweep over every node where
  // each admit keeps the arena-backed span (AdmitView) — no per-session copy
  // of any neighbor list. Pair with BM_LocalCacheCopy: the delta is the
  // allocation+memcpy the span-stable path removes from every cold fetch.
  const Graph& g = BenchGraph();
  auto backend = std::make_shared<InMemoryBackend>(&g);
  for (auto _ : state) {
    AccessInterface access(backend);
    uint64_t sum = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = access.Neighbors(u);
      sum += nbrs.empty() ? 0 : nbrs.front();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_LocalCacheSpan);

void BM_LocalCacheCopy(benchmark::State& state) {
  // The copying admit path (what EVERY fetch paid before the span-stable
  // refactor, and what shared-cache hits still pay — the shared cache may
  // evict, so the session must own a copy): the same first-touch sweep, but
  // served out of a pre-warmed QueryCache so each admit copies the list into
  // session-owned storage. Includes the cache's shard-lock + map lookup,
  // which is the real cost of that path too.
  const Graph& g = BenchGraph();
  auto backend = std::make_shared<InMemoryBackend>(&g);
  auto cache = std::make_shared<QueryCache>();
  {
    AccessInterface warmer(backend, cache);
    for (NodeId u = 0; u < g.num_nodes(); ++u) warmer.Neighbors(u);
  }
  for (auto _ : state) {
    AccessInterface access(backend, cache);
    uint64_t sum = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = access.Neighbors(u);
      sum += nbrs.empty() ? 0 : nbrs.front();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_LocalCacheCopy);

void BM_LocalCacheFlat(benchmark::State& state) {
  // Warm-hit probes through the session cache — the hottest lookup in any
  // walk (every revisited node resolves here without touching the backend).
  // The cache is the flat open-addressed FlatNodeMap; compare against
  // BM_LocalCacheStdMap below for the node-based-map cost this replaced.
  const Graph& g = BenchGraph();
  auto backend = std::make_shared<InMemoryBackend>(&g);
  AccessInterface access(backend);
  for (NodeId u = 0; u < g.num_nodes(); ++u) access.Neighbors(u);  // warm
  Rng rng(99);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    const auto nbrs = access.Neighbors(u);
    benchmark::DoNotOptimize(nbrs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalCacheFlat);

void BM_FlatNodeMapProbe(benchmark::State& state) {
  // The isolated structure: FlatNodeMap hit probes over a walk-sized
  // working set, head-to-head with BM_StdUnorderedMapProbe. The delta is
  // the pointer chase + hash-node overhead the flat table removes from
  // every cached Neighbors() call.
  constexpr NodeId kEntries = 1 << 16;
  FlatNodeMap<std::span<const NodeId>> map;
  const Graph& g = BenchGraph();
  for (NodeId u = 0; u < kEntries; ++u) map.Emplace(u, g.Neighbors(u));
  Rng rng(7);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(kEntries));
    benchmark::DoNotOptimize(map.Find(u));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatNodeMapProbe);

void BM_StdUnorderedMapProbe(benchmark::State& state) {
  constexpr NodeId kEntries = 1 << 16;
  std::unordered_map<NodeId, std::span<const NodeId>> map;
  const Graph& g = BenchGraph();
  for (NodeId u = 0; u < kEntries; ++u) map.emplace(u, g.Neighbors(u));
  Rng rng(7);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(kEntries));
    const auto it = map.find(u);
    benchmark::DoNotOptimize(it == map.end() ? nullptr : it->second.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdUnorderedMapProbe);

void BM_FrameEncode(benchmark::State& state) {
  // Wire-protocol encode for a typical FetchNeighbors reply (a BA-graph
  // neighbor list behind a 24-byte frame header). This plus BM_FrameDecode
  // bounds the serialization tax a remote fetch pays over the arena fetch.
  const Graph& g = BenchGraph();
  const auto neighbors = g.Neighbors(12345);
  std::vector<std::byte> payload;
  std::vector<std::byte> wire;
  uint64_t id = 0;
  for (auto _ : state) {
    payload.clear();
    wire.clear();
    net::EncodeNeighborsReply(0, 0.0, 0.0, neighbors, &payload);
    net::EncodeFrame({.opcode = net::Opcode::kFetchNeighbors,
                      .request_id = ++id,
                      .payload = payload},
                     &wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const Graph& g = BenchGraph();
  std::vector<std::byte> payload;
  std::vector<std::byte> wire;
  net::EncodeNeighborsReply(0, 0.0, 0.0, g.Neighbors(12345), &payload);
  net::EncodeFrame({.opcode = net::Opcode::kFetchNeighbors,
                    .request_id = 7,
                    .payload = payload},
                   &wire);
  for (auto _ : state) {
    net::DecodedFrame frame;
    auto consumed = net::DecodeFrame(wire, &frame);
    auto reply = net::DecodeNeighborsReply(frame.payload);
    benchmark::DoNotOptimize(*consumed);
    benchmark::DoNotOptimize(reply->neighbors.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_FrameDecode);

void BM_RemoteFetch(benchmark::State& state) {
  // A full remote fetch over loopback — encode, syscall, epoll dispatch,
  // server-side arena fetch, reply encode, decode — against the in-process
  // BM_BackendFetchArena baseline. This is the paper's regime: the wire,
  // not the lookup, dominates per-query cost.
  static const auto server = [] {
    auto backend = std::make_shared<InMemoryBackend>(&BenchGraph());
    net::ServerOptions options;
    options.threads = 1;
    return net::WnwServer::Start(backend, options).value();
  }();
  static const auto remote = [] {
    return RemoteBackend::Connect(
               "127.0.0.1:" + std::to_string(server->port()),
               {.connections = 1})
        .value();
  }();
  const Graph& g = BenchGraph();
  NodeId u = 0;
  for (auto _ : state) {
    auto reply = remote->FetchNeighbors(u);
    benchmark::DoNotOptimize(reply->neighbors.data());
    u = (u + 1) % static_cast<NodeId>(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteFetch);

void BM_ShardedBackendFetch(benchmark::State& state) {
  // Routed fetch through the sharded origin (service lock + shard lookup):
  // the per-request overhead sharding adds over the flat arena fetch.
  const Graph& g = BenchGraph();
  static const auto sharded_graph = std::make_shared<const ShardedGraph>(
      ShardedGraph::FromGraph(g, 8, ShardPartition::kModulo).value());
  ShardedBackend backend(sharded_graph);
  NodeId u = 0;
  for (auto _ : state) {
    auto reply = backend.FetchNeighbors(u);
    benchmark::DoNotOptimize(reply->neighbors.data());
    u = (u + 1) % static_cast<NodeId>(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedBackendFetch);

void BM_AliasTableSample(benchmark::State& state) {
  Rng build_rng(5);
  std::vector<double> weights(10000);
  for (double& w : weights) w = build_rng.NextDouble() + 0.01;
  AliasTable table(weights);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample);

void BM_WeightedPickLinear(benchmark::State& state) {
  Rng build_rng(7);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = build_rng.NextDouble() + 0.01;
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedPick(weights, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedPickLinear)->Arg(16)->Arg(256);

void BM_BackwardEstimateOnce(benchmark::State& state) {
  const Graph& g = BenchGraph();
  AccessInterface access(&g);
  SimpleRandomWalk srw;
  const int t = static_cast<int>(state.range(0));
  const CrawlBall ball = CrawlBall::Crawl(access, srw, 0, 2);
  const BackwardEstimator estimator(&srw, 0, {}, &ball);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateOnce(access, 12345, t, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackwardEstimateOnce)->Arg(11)->Arg(21);

void BM_GewekeZScore(benchmark::State& state) {
  GewekeMonitor monitor;
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) monitor.Add(rng.NextGaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.ZScore());
  }
}
BENCHMARK(BM_GewekeZScore);

void BM_ExactDistributionStep(benchmark::State& state) {
  Rng rng(11);
  const Graph g = MakeBarabasiAlbert(5000, 5, rng).value();
  SimpleRandomWalk srw;
  const auto tm = TransitionMatrix::Build(g, srw);
  std::vector<double> p(g.num_nodes(), 0.0);
  p[0] = 1.0;
  for (auto _ : state) {
    p = tm.Multiply(p);
    benchmark::DoNotOptimize(p[0]);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_ExactDistributionStep);

}  // namespace
}  // namespace wnw

BENCHMARK_MAIN();
