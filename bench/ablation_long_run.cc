// §6.1 study: "many short runs" vs "one long run". For a fixed query
// budget, the long run yields many more — but correlated — samples; the
// comparison reports effective sample size (Eq. 25) and the resulting
// average-degree estimation error.
//
// Expected outcome: the long run's nominal sample count is far above its
// effective sample size; many-short-runs (and WE) samples are ~iid.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 0.2), WNW_SEED.
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "datasets/social_datasets.h"
#include "estimation/aggregates.h"
#include "estimation/metrics.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 0.2);
  const SocialDataset ds = MakeYelpLike(env.scale, env.seed, false);
  const double truth = ds.graph.average_degree();

  TablePrinter table({"sampler", "samples", "effective_samples",
                      "query_cost", "rel_error"});
  table.AddComment("Section 6.1: many short runs vs one long run vs WE "
                   "(SRW input, Yelp-like)");
  table.AddComment(StrFormat("dataset: %s; %d trials averaged",
                             ds.graph.DebugString().c_str(), env.trials));

  constexpr int kSamples = 300;
  struct Acc {
    double samples = 0, ess = 0, cost = 0, err = 0;
  };
  Acc short_runs, long_run, we_acc;

  for (int trial = 0; trial < env.trials; ++trial) {
    const uint64_t seed = Mix64(env.seed + trial);
    Rng start_rng(seed);
    const NodeId start =
        static_cast<NodeId>(start_rng.NextBounded(ds.graph.num_nodes()));
    auto theta = [&](NodeId u) {
      return static_cast<double>(ds.graph.Degree(u));
    };
    auto run = [&](const std::string& spec, uint64_t session_seed, Acc* acc,
                   int count) {
      SessionOptions sopts;
      sopts.start = start;
      sopts.seed = session_seed;
      auto session =
          std::move(SamplingSession::Open(&ds.graph, spec, sopts)).value();
      std::vector<NodeId> samples;
      std::vector<double> chain;
      for (int i = 0; i < count; ++i) {
        const auto s = session->Draw();
        if (!s.ok()) break;
        samples.push_back(s.value());
        chain.push_back(theta(s.value()));
      }
      const double est =
          EstimateAverage(samples, session->bias(), theta, theta);
      acc->samples += static_cast<double>(samples.size());
      acc->ess += chain.size() >= 4 ? EffectiveSampleSize(chain)
                                    : static_cast<double>(chain.size());
      acc->cost += static_cast<double>(session->Stats().query_cost);
      acc->err += RelativeError(est, truth);
    };

    run("burnin:srw?max_steps=10000", seed + 1, &short_runs, kSamples);
    // Give the long run the same nominal sample count; its budget
    // advantage shows up as a far smaller query cost instead.
    run("longrun:srw", seed + 2, &long_run, kSamples);
    run(StrFormat("we:srw?diameter=%u", ds.diameter_estimate), seed + 3,
        &we_acc, kSamples);
  }

  const double t = env.trials;
  auto add = [&](const char* label, const Acc& acc) {
    table.AddRow({label, TablePrinter::CellPrec(acc.samples / t, 4),
                  TablePrinter::CellPrec(acc.ess / t, 4),
                  TablePrinter::CellPrec(acc.cost / t, 6),
                  TablePrinter::CellPrec(acc.err / t, 4)});
  };
  add("SRW many-short-runs", short_runs);
  add("SRW one-long-run", long_run);
  add("WE(SRW)", we_acc);
  table.Print(stdout);
  return 0;
}
