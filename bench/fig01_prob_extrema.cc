// Figure 1: minimum and maximum sampling probability vs walk length for a
// Barabási–Albert scale-free network with 31 nodes (m = 3).
//
// Paper shape to reproduce: max probability decays steeply from 1 and the
// minimum rises from 0 shortly after the walk length passes the graph
// diameter; both flatten toward the stationary values, with the speed of
// change collapsing once the walk exceeds the diameter.
//
// Env: WNW_SEED.
#include <cstdio>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "experiments/harness.h"
#include "mcmc/distribution.h"
#include "mcmc/transition.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(/*trials=*/1, /*scale=*/1.0);
  Rng rng(env.seed);
  const Graph g = MakeBarabasiAlbert(31, 3, rng).value();
  const uint32_t diameter = ExactDiameter(g).value();

  // Footnote 1: give every node a small self-transition so the chain is
  // aperiodic and p_t is positive past the diameter.
  LazyRandomWalk lazy(0.05);
  const auto tm = TransitionMatrix::Build(g, lazy);
  const auto extrema = TrackProbabilityExtrema(tm, /*start=*/0, /*max_t=*/80);

  TablePrinter table({"walk_length", "min_prob", "max_prob"});
  table.AddComment("Figure 1: probability extrema vs walk length");
  table.AddComment(g.DebugString() + StrFormat(", diameter=%u", diameter));
  for (int t = 0; t <= 80; ++t) {
    table.AddRow({TablePrinter::Cell(t),
                  TablePrinter::CellPrec(extrema.min_prob[t], 4),
                  TablePrinter::CellPrec(extrema.max_prob[t], 4)});
  }
  table.Print(stdout);
  return 0;
}
