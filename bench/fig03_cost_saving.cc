// Figure 3: query-cost saving of IDEAL-WALK over the input random walk
// (1 - c/c_RW, in percent) as the graph size grows from 4 to 128 nodes, for
// the five theoretical graph models.
//
// Paper shape to reproduce: savings are substantial (>50% in most cases);
// the ratio *increases* with size for Barbell (constant diameter), stays
// roughly flat for Hypercube/Tree/Barabási (log diameter), and declines
// for Cycle (linear diameter).
//
// Env: WNW_SEED, WNW_DELTA_FACTOR.
#include <cstdio>
#include <functional>
#include <vector>

#include "experiments/harness.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mcmc/ideal_walk.h"
#include "mcmc/spectral.h"
#include "mcmc/transition.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0);
  const double delta_factor = EnvDouble("WNW_DELTA_FACTOR", 1e4);
  Rng rng(env.seed);

  struct Row {
    std::string model;
    Graph graph;
  };
  std::vector<Row> rows;
  for (NodeId n : {5u, 9u, 17u, 33u, 65u, 127u}) {
    rows.push_back({"Barbell", MakeBarbell(n | 1u).value()});
  }
  for (NodeId n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    rows.push_back({"Cycle", MakeCycle(n).value()});
  }
  for (uint32_t k : {2u, 3u, 4u, 5u, 6u, 7u}) {
    rows.push_back({"Hypercube", MakeHypercube(k).value()});
  }
  for (uint32_t h : {1u, 2u, 3u, 4u, 5u, 6u}) {
    rows.push_back({"Tree", MakeBalancedBinaryTree(h).value()});
  }
  for (NodeId n : {8u, 16u, 32u, 64u, 128u}) {
    rows.push_back({"Barabasi", MakeBarabasiAlbert(n, 3, rng).value()});
  }

  MetropolisHastingsWalk mhrw;
  TablePrinter table({"model", "n", "diameter", "lambda", "t_opt",
                      "cost_ideal", "cost_rw", "saving_pct"});
  table.AddComment("Figure 3: IDEAL-WALK query-cost saving vs graph size");
  table.AddComment(StrFormat("uniform target via MHRW; Gamma = 1/n, "
                             "Delta = Gamma/%g",
                             delta_factor));
  for (const auto& row : rows) {
    const auto spec = ComputeSpectralGap(row.graph, mhrw);
    if (!spec.ok()) continue;
    IdealWalkParams params;
    params.spectral_gap = spec->spectral_gap;
    params.gamma = 1.0 / row.graph.num_nodes();
    params.delta = params.gamma / delta_factor;
    params.max_degree = row.graph.max_degree();
    const auto analysis = AnalyzeIdealWalk(params);
    if (!analysis.ok()) continue;
    const uint32_t diameter = ExactDiameter(row.graph).value_or(0);
    table.AddRow({row.model,
                  TablePrinter::Cell(uint64_t{row.graph.num_nodes()}),
                  TablePrinter::Cell(uint64_t{diameter}),
                  TablePrinter::CellPrec(params.spectral_gap, 4),
                  TablePrinter::CellPrec(analysis->t_opt, 5),
                  TablePrinter::CellPrec(analysis->cost_at_topt, 5),
                  TablePrinter::CellPrec(analysis->cost_random_walk, 5),
                  TablePrinter::CellPrec(100.0 * analysis->saving_ratio, 4)});
  }
  table.Print(stdout);
  return 0;
}
