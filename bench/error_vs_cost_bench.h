// Shared driver for the relative-error experiment benches (Figures 6-11):
// runs each (sampler, aggregate) pair through the harness and prints one
// table with both the query-cost view (Figs. 6-8) and the sample-count view
// (Fig. 10).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

namespace wnw::bench {

struct Subfigure {
  std::string name;        // e.g. "(a) Average Degree (SRW)"
  SamplerSpec sampler;
  AggregateSpec aggregate;
};

inline void RunErrorBench(const std::string& title,
                          const SocialDataset& dataset,
                          const std::vector<Subfigure>& subfigures,
                          const ErrorVsCostConfig& config) {
  TablePrinter table({"subfigure", "aggregate", "sampler", "samples",
                      "query_cost", "total_api_calls", "rel_error"});
  table.AddComment(title);
  table.AddComment(StrFormat("dataset: %s (%s)", dataset.name.c_str(),
                             dataset.graph.DebugString().c_str()));
  table.AddComment(StrFormat("trials per point: %d", config.trials));
  for (const auto& sub : subfigures) {
    const auto curve = RunErrorVsCost(dataset, sub.sampler, sub.aggregate,
                                      config);
    for (const auto& p : curve) {
      if (p.completed_trials == 0) continue;
      table.AddRow({sub.name, sub.aggregate.label, sub.sampler.label,
                    TablePrinter::Cell(p.samples),
                    TablePrinter::CellPrec(p.mean_query_cost, 6),
                    TablePrinter::CellPrec(p.mean_total_queries, 6),
                    TablePrinter::CellPrec(p.mean_rel_error, 4)});
    }
  }
  table.Print(stdout);
}

}  // namespace wnw::bench
