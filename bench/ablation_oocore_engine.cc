// Out-of-core engine ablation + acceptance gate: serve a snapshot several
// times larger than the resident-byte budget and prove the residency
// machinery (storage/residency.h) pays for itself without costing anything.
//
//   identity — for EVERY sampler family, a budgeted run (residency_mb set,
//     prefetch on) must emit byte-identical per-walker samples at identical
//     per-walker logical query cost to the unbudgeted run over the same
//     snapshot. madvise is advice; if paging can change an estimator the
//     subsystem is broken, not slow.
//
//   paging — the budgeted timed sweep must actually page: prefetches and
//     releases both nonzero, the manager's charged high-water mark within
//     the budget, and the budget itself a small fraction of the snapshot.
//     Without this the identity and wall-clock gates would pass vacuously
//     on a graph that happened to fit.
//
//   wall-clock — with the same budget, the prefetching sweep (scheduler
//     look-ahead feeding MADV_WILLNEED + page touches on the manager's
//     background thread) must beat the no-prefetch baseline that takes
//     every refault inline on the stepping thread. Medians over alternating
//     trials; one worker thread so the overlap being measured is the
//     prefetch thread's, not incidental parallelism.
//
// The process also arms RLIMIT_AS as a hard backstop. The cap cannot be
// tight — an mmap of the whole snapshot must still succeed, and mappings
// charge address space whether or not the pages are resident — so it is
// set to current-VmSize + 2x the snapshot + slack: enough to prove the
// bench completes under a bounded address space, impossible to satisfy by
// simply heap-copying the file a few times over.
//
// Exits nonzero on any violation. Env: WNW_SEED, WNW_TRIALS, WNW_SCALE
// (scales the graph), WNW_BENCH_JSON (writes the gate report for the CI
// artifact, uploaded as BENCH_oocore.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "access/snapshot_backend.h"
#include "engine/walk_engine.h"
#include "experiments/harness.h"
#include "graph/generators.h"
#include "storage/residency.h"
#include "storage/snapshot.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace wnw;

// ~5x smaller than the snapshot. It must also comfortably hold one pinned
// block plus prefetch_depth queued ones: BA degree skew makes the lowest-ID
// blocks span megabytes (the hubs live there), and a budget the pinned
// working set overflows would thrash prefetched blocks out before they are
// stepped. kTimedBlockNodes keeps the worst block span a fraction of this.
constexpr uint64_t kBudgetBytes = 8ull << 20;
constexpr uint32_t kTimedBlockNodes = 2048;

struct IdentityCase {
  const char* sampler;
  const char* spec;
};

// One spec per registered sampler family (same coverage table as
// ablation_block_engine; engine_test keeps the registry honest).
constexpr IdentityCase kIdentityCases[] = {
    {"walk", "walk:srw?steps=6"},
    {"walk", "walk:mhrw?steps=5"},
    {"walk", "walk:lazy?steps=5"},
    {"burnin", "burnin:srw?max_steps=400"},
    {"longrun", "longrun:lazy?thinning=3&max_steps=400"},
    {"we", "we:mhrw?diameter=3"},
    {"we-path", "we-path:srw?diameter=3"},
};

std::string SnapshotPath() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/wnw_oocore_bench.snap";
}

// Arms the address-space backstop (see file comment for why it is loose).
// Returns the cap in bytes, 0 where RLIMIT_AS is unavailable.
uint64_t ArmAddressSpaceCap(uint64_t snapshot_bytes) {
#if defined(__linux__)
  const uint64_t vm_now = [] {
    std::FILE* f = std::fopen("/proc/self/statm", "re");
    if (f == nullptr) return uint64_t{0};
    unsigned long long vm_pages = 0;
    const int got = std::fscanf(f, "%llu", &vm_pages);
    std::fclose(f);
    return got == 1 ? uint64_t{vm_pages} * 4096 : uint64_t{0};
  }();
  if (vm_now == 0) return 0;
  const uint64_t cap = vm_now + 2 * snapshot_bytes + (256ull << 20);
  struct rlimit limit;
  limit.rlim_cur = cap;
  limit.rlim_max = cap;
  if (::setrlimit(RLIMIT_AS, &limit) != 0) return 0;
  return cap;
#else
  (void)snapshot_bytes;
  return 0;
#endif
}

bool RunIdentityGate(const Graph& g,
                     const std::shared_ptr<AccessBackend>& backend,
                     uint64_t seed, int* runs) {
  constexpr int kWalkers = 8;
  constexpr uint64_t kSamplesPerWalker = 4;
  bool ok = true;

  for (const IdentityCase& c : kIdentityCases) {
    EngineOptions base;
    base.walkers = kWalkers;
    base.samples_per_walker = kSamplesPerWalker;
    base.session.seed = seed;
    base.session.backend = backend;

    EngineOptions unbudgeted = base;  // residency off: the reference run
    const auto reference = RunWalkEngine(&g, c.spec, unbudgeted);
    if (!reference.ok()) {
      std::fprintf(stderr, "GATE: unbudgeted run failed for %s: %s\n", c.spec,
                   reference.status().ToString().c_str());
      ok = false;
      continue;
    }

    EngineOptions budgeted = base;
    budgeted.residency_budget_bytes = kBudgetBytes;
    budgeted.prefetch_depth = 2;
    const auto paged = RunWalkEngine(&g, c.spec, budgeted);
    *runs += 2;
    if (!paged.ok()) {
      std::fprintf(stderr, "GATE: budgeted run failed for %s: %s\n", c.spec,
                   paged.status().ToString().c_str());
      ok = false;
      continue;
    }
    if (paged->stats.engine_residency_budget != kBudgetBytes) {
      std::fprintf(stderr,
                   "GATE: %s: budgeted run did not engage residency "
                   "management (budget stat %llu)\n",
                   c.spec,
                   static_cast<unsigned long long>(
                       paged->stats.engine_residency_budget));
      ok = false;
    }
    for (int w = 0; w < kWalkers; ++w) {
      const auto ref_span = reference->SamplesFor(w);
      const auto got_span = paged->SamplesFor(w);
      if (!std::equal(ref_span.begin(), ref_span.end(), got_span.begin(),
                      got_span.end())) {
        std::fprintf(stderr,
                     "GATE: samples diverged under a residency budget: %s "
                     "walker %d\n",
                     c.spec, w);
        ok = false;
      }
      if (paged->walker_stats[w].query_cost !=
              reference->walker_stats[w].query_cost ||
          paged->walker_stats[w].total_queries !=
              reference->walker_stats[w].total_queries) {
        std::fprintf(
            stderr,
            "GATE: query cost diverged under a residency budget: %s walker "
            "%d: budgeted %llu/%llu vs unbudgeted %llu/%llu\n",
            c.spec, w,
            static_cast<unsigned long long>(paged->walker_stats[w].query_cost),
            static_cast<unsigned long long>(
                paged->walker_stats[w].total_queries),
            static_cast<unsigned long long>(
                reference->walker_stats[w].query_cost),
            static_cast<unsigned long long>(
                reference->walker_stats[w].total_queries));
        ok = false;
      }
    }
  }
  return ok;
}

// Makes the next sweep genuinely out-of-core: drop the mapping's page-table
// entries (MADV_DONTNEED on a read-only file mapping — they refault from the
// file), then evict the file's clean pages from the page cache, so refaults
// are real reads. This is what turns the wall-clock gate into an I/O-overlap
// measurement: MADV_WILLNEED schedules readahead and returns, so the
// manager's prefetch thread rides the disk while the stepping thread rides
// the CPU — a win that holds even on a single-CPU runner, where overlapping
// two CPU-bound threads is impossible by construction.
class ColdFile {
 public:
  explicit ColdFile(const std::string& path) {
#if defined(__linux__)
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ >= 0) ::fdatasync(fd_);  // writeback, so DONTNEED can evict
#else
    (void)path;
#endif
  }
  ~ColdFile() {
#if defined(__linux__)
    if (fd_ >= 0) ::close(fd_);
#endif
  }

  void Evict(const Graph& g) {
#if defined(__linux__)
    storage::SystemPager().DontNeed(
        std::as_bytes(g.adjacency()).data(),
        std::as_bytes(g.adjacency()).size());
    if (fd_ >= 0) ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
#else
    (void)g;
#endif
  }

 private:
  int fd_ = -1;
};

struct TimedRun {
  double elapsed_seconds = 0.0;
  uint64_t prefetches = 0;
  uint64_t releases = 0;
  uint64_t peak_bytes = 0;
  uint64_t block_switches = 0;
};

bool TimedSweep(const Graph& g, const std::shared_ptr<AccessBackend>& backend,
                uint64_t seed, uint64_t walkers, int prefetch_depth,
                TimedRun* out) {
  EngineOptions options;
  options.walkers = walkers;
  options.samples_per_walker = 1;
  options.block_nodes = kTimedBlockNodes;
  options.threads = 1;  // isolate prefetch-thread overlap (file comment)
  options.session.seed = seed;
  options.session.backend = backend;
  options.residency_budget_bytes = kBudgetBytes;
  options.prefetch_depth = prefetch_depth;
  const auto run = RunWalkEngine(&g, "walk:srw?steps=8", options);
  if (!run.ok()) {
    std::fprintf(stderr, "error: timed sweep (prefetch=%d): %s\n",
                 prefetch_depth, run.status().ToString().c_str());
    return false;
  }
  out->elapsed_seconds = run->stats.elapsed_seconds;
  out->prefetches = run->stats.engine_residency_prefetches;
  out->releases = run->stats.engine_residency_releases;
  out->peak_bytes = run->stats.engine_residency_peak_bytes;
  out->block_switches = run->stats.engine_block_switches;
  return true;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Run() {
  const BenchEnv env = ReadBenchEnv(/*default_trials=*/5,
                                    /*default_scale=*/1.0);

  // A snapshot roughly 10x the budget: BA m=8 gives ~16 adjacency entries
  // per node, so 600k nodes is ~38 MB of mmap'd adjacency vs a 4 MiB cap.
  const NodeId n =
      static_cast<NodeId>(std::max(50000.0, 600000.0 * env.scale));
  Rng graph_rng(env.seed);
  const auto built = MakeBarabasiAlbert(n, 8, graph_rng);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const std::string path = SnapshotPath();
  if (const Status status = WriteGraphSnapshot(*built, path); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  const uint64_t snapshot_bytes = std::filesystem::file_size(path, ec);
  if (ec || snapshot_bytes == 0) {
    std::fprintf(stderr, "error: cannot stat %s\n", path.c_str());
    return 1;
  }

  const uint64_t as_cap = ArmAddressSpaceCap(snapshot_bytes);

  auto backend = SnapshotBackend::Open(path);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<AccessBackend> shared = *backend;
  const Graph& g = static_cast<const SnapshotBackend&>(*shared).graph();

  bool ok = true;
  if (kBudgetBytes * 4 >= snapshot_bytes) {
    std::fprintf(stderr,
                 "GATE: snapshot (%llu bytes) is not out-of-core relative "
                 "to the %llu-byte budget\n",
                 static_cast<unsigned long long>(snapshot_bytes),
                 static_cast<unsigned long long>(kBudgetBytes));
    ok = false;
  }

  // --- gate 1: byte identity under a budget --------------------------------
  int identity_runs = 0;
  if (!RunIdentityGate(g, shared, env.seed + 1, &identity_runs)) ok = false;
  if (ok) {
    std::printf(
        "# identity: %d snapshot-served engine runs, budgeted == unbudgeted "
        "(samples and per-walker costs) across %zu sampler specs\n",
        identity_runs, std::size(kIdentityCases));
  }

  // --- gates 2+3: paging happened, and prefetch beats no-prefetch ----------
  const uint64_t walkers = static_cast<uint64_t>(
      std::max(10000.0, 100000.0 * env.scale));
  ColdFile cold(path);

  std::vector<double> baseline_times;
  std::vector<double> prefetch_times;
  TimedRun baseline_last;
  TimedRun prefetch_last;
  for (int trial = 0; trial < env.trials; ++trial) {
    // Every trial starts cold (see ColdFile) and the configs alternate, so
    // page-cache drift and CPU-frequency wander hit both sides equally.
    cold.Evict(g);
    if (!TimedSweep(g, shared, env.seed + 2, walkers, 0, &baseline_last)) {
      return 1;
    }
    cold.Evict(g);
    if (!TimedSweep(g, shared, env.seed + 2, walkers, 2, &prefetch_last)) {
      return 1;
    }
    baseline_times.push_back(baseline_last.elapsed_seconds);
    prefetch_times.push_back(prefetch_last.elapsed_seconds);
  }
  const double baseline_median = Median(baseline_times);
  const double prefetch_median = Median(prefetch_times);

  if (prefetch_last.prefetches == 0 || prefetch_last.releases == 0) {
    std::fprintf(stderr,
                 "GATE: budgeted sweep did not page (prefetches=%llu, "
                 "releases=%llu) — graph fits the budget, gate is vacuous\n",
                 static_cast<unsigned long long>(prefetch_last.prefetches),
                 static_cast<unsigned long long>(prefetch_last.releases));
    ok = false;
  }
  if (prefetch_last.peak_bytes > kBudgetBytes ||
      baseline_last.peak_bytes > kBudgetBytes) {
    std::fprintf(stderr,
                 "GATE: charged residency exceeded the budget (peaks %llu / "
                 "%llu vs %llu)\n",
                 static_cast<unsigned long long>(prefetch_last.peak_bytes),
                 static_cast<unsigned long long>(baseline_last.peak_bytes),
                 static_cast<unsigned long long>(kBudgetBytes));
    ok = false;
  }
  if (!(prefetch_median < baseline_median)) {
    std::fprintf(stderr,
                 "GATE: prefetching sweep (median %.4fs) did not beat the "
                 "no-prefetch budgeted baseline (median %.4fs)\n",
                 prefetch_median, baseline_median);
    ok = false;
  }

  TablePrinter table({"config", "median_s", "prefetches", "releases",
                      "peak_charged", "block_switches"});
  table.AddComment(StrFormat(
      "Out-of-core sweep: walk:srw?steps=8, 1 worker thread, budget %llu "
      "MiB, cold page cache per trial",
      static_cast<unsigned long long>(kBudgetBytes >> 20)));
  table.AddComment(StrFormat(
      "graph: BA n=%u m=8; snapshot %llu bytes; walkers %llu; AS cap %llu",
      static_cast<unsigned>(n),
      static_cast<unsigned long long>(snapshot_bytes),
      static_cast<unsigned long long>(walkers),
      static_cast<unsigned long long>(as_cap)));
  table.AddRow({TablePrinter::Cell("prefetch=0"),
                TablePrinter::CellPrec(baseline_median, 4),
                TablePrinter::Cell(baseline_last.prefetches),
                TablePrinter::Cell(baseline_last.releases),
                TablePrinter::Cell(baseline_last.peak_bytes),
                TablePrinter::Cell(baseline_last.block_switches)});
  table.AddRow({TablePrinter::Cell("prefetch=2"),
                TablePrinter::CellPrec(prefetch_median, 4),
                TablePrinter::Cell(prefetch_last.prefetches),
                TablePrinter::Cell(prefetch_last.releases),
                TablePrinter::Cell(prefetch_last.peak_bytes),
                TablePrinter::Cell(prefetch_last.block_switches)});
  table.Print(stdout);

  if (const char* json_path = std::getenv("WNW_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"ablation_oocore_engine\",\n"
        "  \"graph_nodes\": %u,\n  \"snapshot_bytes\": %llu,\n"
        "  \"budget_bytes\": %llu,\n  \"address_space_cap_bytes\": %llu,\n"
        "  \"identity_runs\": %d,\n  \"walkers\": %llu,\n"
        "  \"trials\": %d,\n"
        "  \"baseline\": {\"prefetch\": 0, \"median_seconds\": %.6f},\n"
        "  \"prefetched\": {\"prefetch\": 2, \"median_seconds\": %.6f,\n"
        "    \"prefetches\": %llu, \"releases\": %llu, "
        "\"peak_charged_bytes\": %llu},\n"
        "  \"speedup\": %.4f,\n  \"gate_ok\": %s\n}\n",
        static_cast<unsigned>(n),
        static_cast<unsigned long long>(snapshot_bytes),
        static_cast<unsigned long long>(kBudgetBytes),
        static_cast<unsigned long long>(as_cap), identity_runs,
        static_cast<unsigned long long>(walkers), env.trials, baseline_median,
        prefetch_median,
        static_cast<unsigned long long>(prefetch_last.prefetches),
        static_cast<unsigned long long>(prefetch_last.releases),
        static_cast<unsigned long long>(prefetch_last.peak_bytes),
        prefetch_median > 0.0 ? baseline_median / prefetch_median : 0.0,
        ok ? "true" : "false");
    std::fclose(f);
  }
  std::remove(path.c_str());

  if (!ok) return 1;
  std::printf(
      "# GATE OK: identity held under a %llu-byte budget on a %llu-byte "
      "snapshot, paging engaged, prefetch beat no-prefetch (%.4fs vs "
      "%.4fs)\n",
      static_cast<unsigned long long>(kBudgetBytes),
      static_cast<unsigned long long>(snapshot_bytes), prefetch_median,
      baseline_median);
  return 0;
}

}  // namespace

int main() { return Run(); }
