// Block-engine ablation + acceptance gate: the two promises the engine
// makes, checked together because each is worthless without the other.
//
//   identity — for EVERY registered sampler, RunWalkEngine must emit
//     byte-identical per-walker samples to RunWalkerPool under the same
//     seed, at identical per-walker logical query cost, for every block
//     size and scheduler order in the sweep. A fast engine that drifts
//     from the pool is a different estimator, not an optimization.
//
//   throughput — a walker-count sweep (1k -> 1M logical walkers) over a
//     simple random walk. The gate: steps/sec at the top of the sweep must
//     beat the thread-pool baseline at ITS maximum (64 OS-thread walkers).
//     Multiplexing a million walkers over a handful of threads has to be
//     at least as fast as the pool's best, or the subsystem lost its
//     reason to exist.
//
// Exits nonzero on any violation. Env: WNW_SEED, WNW_SCALE (scales the
// throughput graph), WNW_WALKERS_MAX (top of the sweep, default 1000000),
// WNW_BENCH_JSON (when set, writes the throughput sweep as JSON for the CI
// artifact).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/walk_engine.h"
#include "experiments/harness.h"
#include "graph/generators.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace wnw;

struct IdentityCase {
  const char* sampler;  // registry name, for coverage accounting
  const char* spec;
};

// One spec per registered sampler family (engine_test enforces that this
// style of table covers the whole registry; here the set is spelled out).
constexpr IdentityCase kIdentityCases[] = {
    {"walk", "walk:srw?steps=6"},
    {"walk", "walk:mhrw?steps=5"},
    {"walk", "walk:lazy?steps=5"},
    {"burnin", "burnin:srw?max_steps=400"},
    {"longrun", "longrun:lazy?thinning=3&max_steps=400"},
    {"we", "we:mhrw?diameter=3"},
    {"we-path", "we-path:srw?diameter=3"},
};

constexpr uint32_t kBlockSizes[] = {32, 512, 0};  // 0 = derived default
constexpr ScheduleOrder kOrders[] = {ScheduleOrder::kMostPending,
                                     ScheduleOrder::kRoundRobin,
                                     ScheduleOrder::kLeastPending};

bool RunIdentityGate(const Graph& g, uint64_t seed) {
  constexpr int kWalkers = 8;
  constexpr uint64_t kSamplesPerWalker = 4;
  bool ok = true;
  int runs = 0;

  for (const IdentityCase& c : kIdentityCases) {
    WalkerPoolOptions pool_options;
    pool_options.walkers = kWalkers;
    pool_options.samples_per_walker = kSamplesPerWalker;
    pool_options.session.seed = seed;
    const auto pool = RunWalkerPool(&g, c.spec, pool_options);
    if (!pool.ok()) {
      std::fprintf(stderr, "GATE: pool run failed for %s: %s\n", c.spec,
                   pool.status().ToString().c_str());
      ok = false;
      continue;
    }

    for (const uint32_t block : kBlockSizes) {
      for (const ScheduleOrder order : kOrders) {
        EngineOptions options;
        options.walkers = kWalkers;
        options.samples_per_walker = kSamplesPerWalker;
        options.block_nodes = block;
        options.schedule.order = order;
        options.session.seed = seed;
        const auto engine = RunWalkEngine(&g, c.spec, options);
        ++runs;
        if (!engine.ok()) {
          std::fprintf(stderr, "GATE: engine run failed for %s: %s\n", c.spec,
                       engine.status().ToString().c_str());
          ok = false;
          continue;
        }
        for (int w = 0; w < kWalkers; ++w) {
          const auto span = engine->SamplesFor(w);
          const std::vector<NodeId> got(span.begin(), span.end());
          if (got != pool->samples[w]) {
            std::fprintf(stderr,
                         "GATE: samples diverged: %s walker %d (block=%u, "
                         "order=%s)\n",
                         c.spec, w, block,
                         std::string(ScheduleOrderKey(order)).c_str());
            ok = false;
          }
          if (engine->walker_stats[w].query_cost !=
                  pool->stats[w].query_cost ||
              engine->walker_stats[w].total_queries !=
                  pool->stats[w].total_queries) {
            std::fprintf(
                stderr,
                "GATE: query cost diverged: %s walker %d (block=%u, "
                "order=%s): engine %llu/%llu vs pool %llu/%llu\n",
                c.spec, w, block,
                std::string(ScheduleOrderKey(order)).c_str(),
                static_cast<unsigned long long>(
                    engine->walker_stats[w].query_cost),
                static_cast<unsigned long long>(
                    engine->walker_stats[w].total_queries),
                static_cast<unsigned long long>(pool->stats[w].query_cost),
                static_cast<unsigned long long>(
                    pool->stats[w].total_queries));
            ok = false;
          }
        }
      }
    }
  }
  if (ok) {
    std::printf(
        "# identity: %d engine runs (%zu specs x %zu block sizes x %zu "
        "orders) byte-identical to the pool at identical query cost\n",
        runs, std::size(kIdentityCases), std::size(kBlockSizes),
        std::size(kOrders));
  }
  return ok;
}

struct SweepPoint {
  uint64_t walkers = 0;
  double steps_per_sec = 0.0;
  double elapsed_seconds = 0.0;
  uint64_t steps = 0;
  uint64_t block_switches = 0;
  uint64_t resident_peak = 0;
};

int Run() {
  const BenchEnv env = ReadBenchEnv(/*default_trials=*/1,
                                    /*default_scale=*/1.0);
  Rng graph_rng(env.seed);
  const NodeId small_n = 2000;
  const auto small = MakeBarabasiAlbert(small_n, 4, graph_rng);
  if (!small.ok()) {
    std::fprintf(stderr, "error: %s\n", small.status().ToString().c_str());
    return 1;
  }

  // --- gate 1: identity against the pool ------------------------------------
  bool ok = RunIdentityGate(*small, env.seed + 1);

  // --- gate 2: throughput sweep ---------------------------------------------
  const NodeId sweep_n =
      static_cast<NodeId>(static_cast<double>(50000) * env.scale);
  Rng sweep_rng(env.seed + 2);
  const auto sweep_graph = MakeBarabasiAlbert(sweep_n, 8, sweep_rng);
  if (!sweep_graph.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 sweep_graph.status().ToString().c_str());
    return 1;
  }
  const char* spec = "walk:srw?steps=5";
  constexpr uint64_t kStepsPerSample = 5;

  uint64_t walkers_max = 1000000;
  if (const char* raw = std::getenv("WNW_WALKERS_MAX")) {
    if (!ParseUint64(raw, &walkers_max) || walkers_max < 1000) {
      std::fprintf(stderr, "error: bad WNW_WALKERS_MAX '%s'\n", raw);
      return 1;
    }
  }

  // Pool baseline at the pool's architectural maximum: 64 OS threads, with
  // enough draws per walker that thread startup amortizes away. Median of
  // three runs — a single short pool run is noisy enough to flake the gate.
  const uint64_t pool_steps = 64ull * 200ull * kStepsPerSample;
  std::vector<double> pool_rates;
  for (int trial = 0; trial < 3; ++trial) {
    WalkerPoolOptions pool_options;
    pool_options.walkers = 64;
    pool_options.samples_per_walker = 200;
    pool_options.session.seed = env.seed + 3;
    const auto pool = RunWalkerPool(&*sweep_graph, spec, pool_options);
    if (!pool.ok()) {
      std::fprintf(stderr, "error: %s\n", pool.status().ToString().c_str());
      return 1;
    }
    pool_rates.push_back(
        pool->elapsed_seconds > 0.0
            ? static_cast<double>(pool_steps) / pool->elapsed_seconds
            : 0.0);
  }
  std::sort(pool_rates.begin(), pool_rates.end());
  const double pool_steps_per_sec = pool_rates[1];

  std::vector<SweepPoint> sweep;
  for (uint64_t walkers = 1000; walkers <= walkers_max; walkers *= 10) {
    EngineOptions options;
    options.walkers = walkers;
    options.samples_per_walker = 1;
    options.session.seed = env.seed + 3;
    const auto run = RunWalkEngine(&*sweep_graph, spec, options);
    if (!run.ok()) {
      std::fprintf(stderr, "error: engine at %llu walkers: %s\n",
                   static_cast<unsigned long long>(walkers),
                   run.status().ToString().c_str());
      return 1;
    }
    SweepPoint p;
    p.walkers = walkers;
    p.steps_per_sec = run->stats.engine_steps_per_sec;
    p.elapsed_seconds = run->stats.elapsed_seconds;
    p.steps = run->stats.engine_steps;
    p.block_switches = run->stats.engine_block_switches;
    p.resident_peak = run->stats.engine_resident_peak;
    sweep.push_back(p);
  }

  TablePrinter table({"walkers", "steps_per_sec", "elapsed_s", "steps",
                      "block_switches", "resident_peak"});
  table.AddComment(
      "Block-engine walker-count sweep (walk:srw?steps=5, flat mode)");
  table.AddComment(StrFormat(
      "graph: BA n=%u m=8; pool baseline: 64 walkers x 200 draws = %.0f "
      "steps/sec",
      static_cast<unsigned>(sweep_n), pool_steps_per_sec));
  for (const SweepPoint& p : sweep) {
    table.AddRow({TablePrinter::Cell(p.walkers),
                  TablePrinter::CellPrec(p.steps_per_sec, 6),
                  TablePrinter::CellPrec(p.elapsed_seconds, 4),
                  TablePrinter::Cell(p.steps),
                  TablePrinter::Cell(p.block_switches),
                  TablePrinter::Cell(p.resident_peak)});
  }
  table.Print(stdout);

  if (const char* json_path = std::getenv("WNW_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_block_engine\",\n"
                 "  \"graph_nodes\": %u,\n"
                 "  \"pool_baseline\": {\"walkers\": 64, "
                 "\"steps_per_sec\": %.3f},\n  \"sweep\": [\n",
                 static_cast<unsigned>(sweep_n), pool_steps_per_sec);
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      std::fprintf(f,
                   "    {\"walkers\": %llu, \"steps_per_sec\": %.3f, "
                   "\"elapsed_seconds\": %.6f, \"steps\": %llu, "
                   "\"block_switches\": %llu, \"resident_peak\": %llu}%s\n",
                   static_cast<unsigned long long>(p.walkers),
                   p.steps_per_sec, p.elapsed_seconds,
                   static_cast<unsigned long long>(p.steps),
                   static_cast<unsigned long long>(p.block_switches),
                   static_cast<unsigned long long>(p.resident_peak),
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  const SweepPoint& top = sweep.back();
  if (!(top.steps_per_sec >= pool_steps_per_sec)) {
    std::fprintf(stderr,
                 "GATE: engine at %llu walkers ran %.0f steps/sec, below "
                 "the 64-walker pool baseline of %.0f\n",
                 static_cast<unsigned long long>(top.walkers),
                 top.steps_per_sec, pool_steps_per_sec);
    ok = false;
  } else {
    std::printf(
        "# throughput: engine at %llu walkers: %.0f steps/sec vs pool "
        "baseline %.0f (%.1fx)\n",
        static_cast<unsigned long long>(top.walkers), top.steps_per_sec,
        pool_steps_per_sec, top.steps_per_sec / pool_steps_per_sec);
  }

  if (!ok) return 1;
  std::printf("# GATE OK: byte-identity held and the engine beat the pool's "
              "best throughput\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
