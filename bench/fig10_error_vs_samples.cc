// Figure 10: relative error of AVG estimations vs the NUMBER OF SAMPLES on
// the Google Plus(-like) graph — sample-quality view of Figure 6 (the same
// four subfigures). This isolates bias/variance of the produced samples
// from the cost of producing them.
//
// Paper shape to reproduce: for equal sample counts, WE's error is at or
// below the Geweke-monitored input walk's — the speedup is not bought with
// worse samples.
//
// Env: WNW_TRIALS (default 10), WNW_SCALE (default 1.0 = paper size), WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(10, 1.0);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);

  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 1;
  BurnInSampler::Options bopts;
  bopts.max_steps = 20000;

  const AggregateSpec avg_degree{"avg_degree", ""};
  const AggregateSpec avg_desc{"avg_self_desc_len", "self_desc_len"};
  std::vector<Subfigure> subs;
  subs.push_back({"(a)", MakeBurnInSpec("srw", bopts), avg_degree});
  subs.push_back({"(a)", MakeWalkEstimateSpec("srw", wopts), avg_degree});
  subs.push_back({"(b)", MakeBurnInSpec("srw", bopts), avg_desc});
  subs.push_back({"(b)", MakeWalkEstimateSpec("srw", wopts), avg_desc});
  subs.push_back({"(c)", MakeBurnInSpec("mhrw", bopts), avg_degree});
  subs.push_back({"(c)", MakeWalkEstimateSpec("mhrw", wopts), avg_degree});
  subs.push_back({"(d)", MakeBurnInSpec("mhrw", bopts), avg_desc});
  subs.push_back({"(d)", MakeWalkEstimateSpec("mhrw", wopts), avg_desc});

  ErrorVsCostConfig config;
  config.sample_counts = {5, 10, 20, 40, 80, 120};
  config.trials = env.trials;
  config.seed = env.seed + 1;  // independent of the Fig. 6 run
  bench::RunErrorBench(
      "Figure 10: relative error vs number of samples, Google Plus-like",
      ds, subs, config);
  return 0;
}
