// Figure 9: the improvement trend across WALK-ESTIMATE's variance-reduction
// heuristics on the Google Plus(-like) graph: WE-None (no heuristics),
// WE-Crawl (initial crawling only), WE-Weighted (weighted backward sampling
// only), WE (both). Subfigures as in Figure 6: {SRW, MHRW} x {avg degree,
// avg self-description length}.
//
// Paper shape to reproduce: WE dominates the single-heuristic variants,
// which dominate WE-None.
//
// Env: WNW_TRIALS (default 8), WNW_SCALE (default 1.0 = paper size), WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(8, 1.0);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);

  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 1;

  const AggregateSpec avg_degree{"avg_degree", ""};
  const AggregateSpec avg_desc{"avg_self_desc_len", "self_desc_len"};
  const std::vector<WalkEstimateVariant> variants = {
      WalkEstimateVariant::kNone, WalkEstimateVariant::kCrawlOnly,
      WalkEstimateVariant::kWeightedOnly, WalkEstimateVariant::kFull};

  std::vector<Subfigure> subs;
  struct Panel {
    const char* tag;
    const char* walk;
    AggregateSpec aggregate;
  };
  const std::vector<Panel> panels = {{"(a)", "srw", avg_degree},
                                     {"(b)", "srw", avg_desc},
                                     {"(c)", "mhrw", avg_degree},
                                     {"(d)", "mhrw", avg_desc}};
  for (const auto& panel : panels) {
    for (const auto variant : variants) {
      subs.push_back({panel.tag,
                      MakeWalkEstimateSpec(panel.walk, wopts, variant),
                      panel.aggregate});
    }
  }

  ErrorVsCostConfig config;
  config.sample_counts = {10, 20, 40, 80};
  config.trials = env.trials;
  config.seed = env.seed;
  bench::RunErrorBench(
      "Figure 9: WE variance-reduction ablation, Google Plus-like", ds, subs,
      config);
  return 0;
}
