// Figure 5: the limitation of WALK-ESTIMATE on long-diameter graphs.
// Cycle graphs of size 11, 21, 31, 41, 51 (diameters 5..25); SRW with a
// Geweke monitor vs WE (SRW input); the measured quantity is the average
// number of walk steps (API invocations) per sample.
//
// Paper shape to reproduce: SRW's cost is barely affected by the diameter
// (the degree observable is constant on a cycle, so the monitor converges
// at its minimum window), while WE's cost climbs steeply — its backward
// walks almost never hit the start/crawled region when the diameter is
// large.
//
// Env: WNW_TRIALS (default 5), WNW_SAMPLES (default 30 per trial),
//      WNW_SEED.
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "experiments/harness.h"
#include "graph/generators.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(/*trials=*/5, /*scale=*/1.0,
                                    /*samples=*/30);

  TablePrinter table({"cycle_n", "diameter", "sampler", "steps_per_sample",
                      "unique_cost_per_sample"});
  table.AddComment("Figure 5: steps per sample on cycle graphs, SRW vs WE");
  table.AddComment(StrFormat("%d trials x %llu samples",
                             env.trials,
                             static_cast<unsigned long long>(env.samples)));
  for (NodeId n : {11u, 21u, 31u, 41u, 51u}) {
    const Graph g = MakeCycle(n).value();
    const uint32_t diameter = n / 2;
    const std::string we_spec = StrFormat(
        "we:srw?diameter=%u&base_reps=4&max_extra_reps=8", diameter);
    double srw_steps = 0, srw_unique = 0, we_steps = 0, we_unique = 0;
    for (int trial = 0; trial < env.trials; ++trial) {
      const uint64_t seed = Mix64(env.seed ^ (n * 1000 + trial));
      SessionOptions sopts;
      sopts.start = 0;
      {
        sopts.seed = seed;
        auto session = std::move(SamplingSession::Open(&g, "burnin:srw",
                                                       sopts))
                           .value();
        for (uint64_t i = 0; i < env.samples; ++i) {
          (void)session->Draw();
        }
        const SessionStats stats = session->Stats();
        srw_steps += static_cast<double>(stats.total_queries) /
                     static_cast<double>(env.samples);
        srw_unique += static_cast<double>(stats.query_cost) /
                      static_cast<double>(env.samples);
      }
      {
        sopts.seed = seed + 1;
        auto session =
            std::move(SamplingSession::Open(&g, we_spec, sopts)).value();
        for (uint64_t i = 0; i < env.samples; ++i) {
          if (!session->Draw().ok()) break;
        }
        const SessionStats stats = session->Stats();
        we_steps += static_cast<double>(stats.total_queries) /
                    static_cast<double>(env.samples);
        we_unique += static_cast<double>(stats.query_cost) /
                     static_cast<double>(env.samples);
      }
    }
    const double t = static_cast<double>(env.trials);
    table.AddRow({TablePrinter::Cell(uint64_t{n}),
                  TablePrinter::Cell(uint64_t{diameter}), "SRW",
                  TablePrinter::CellPrec(srw_steps / t, 5),
                  TablePrinter::CellPrec(srw_unique / t, 4)});
    table.AddRow({TablePrinter::Cell(uint64_t{n}),
                  TablePrinter::Cell(uint64_t{diameter}), "WE",
                  TablePrinter::CellPrec(we_steps / t, 5),
                  TablePrinter::CellPrec(we_unique / t, 4)});
  }
  table.Print(stdout);
  return 0;
}
