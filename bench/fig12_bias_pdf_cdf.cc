// Figure 12: PDF and CDF of the sampling distributions on the small
// scale-free graph, with nodes ordered by degree (descending): theoretical
// target (uniform), SRW (measured), WE (measured).
//
// Paper shape to reproduce: SRW's PDF is inflated on the high-degree
// (left) side and its CDF rises above the diagonal early; WE's curves hug
// the theoretical ones.
//
// Env: WNW_SAMPLES (default 100000), WNW_SEED, WNW_THREADS,
//      WNW_PRINT_EVERY (default 20: print every k-th node).
#include <cstdio>

#include "datasets/social_datasets.h"
#include "estimation/empirical.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0, /*samples=*/100000);
  const uint64_t print_every = EnvUint64("WNW_PRINT_EVERY", 20);
  const SocialDataset ds = MakeSmallScaleFree(env.seed);
  const NodeId n = ds.graph.num_nodes();
  const std::vector<double> uniform(n, 1.0 / n);

  BurnInSampler::Options bopts;
  bopts.max_steps = 10000;
  const auto srw_run = RunEmpiricalDistribution(
      ds, MakeBurnInSpec("srw", bopts), env.samples, env.seed + 1);

  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  const auto we_run = RunEmpiricalDistribution(
      ds, MakeWalkEstimateSpec("mhrw", wopts), env.samples, env.seed + 2);

  // Order nodes by degree descending (the paper's x-axis).
  std::vector<double> degree_key(n);
  for (NodeId u = 0; u < n; ++u) degree_key[u] = ds.graph.Degree(u);
  const auto theo = OrderByKeyDescending(uniform, degree_key);
  const auto srw = OrderByKeyDescending(srw_run.empirical_pmf, degree_key);
  const auto we = OrderByKeyDescending(we_run.empirical_pmf, degree_key);

  TablePrinter table({"rank_by_degree", "degree", "pdf_theo", "pdf_srw",
                      "pdf_we", "cdf_theo", "cdf_srw", "cdf_we"});
  table.AddComment("Figure 12: sampling-distribution PDF/CDF, nodes ordered "
                   "by degree (descending)");
  table.AddComment(StrFormat("dataset: %s; %llu samples per sampler",
                             ds.name.c_str(),
                             static_cast<unsigned long long>(env.samples)));
  for (NodeId rank = 0; rank < n; rank += static_cast<NodeId>(print_every)) {
    table.AddRow({TablePrinter::Cell(uint64_t{rank}),
                  TablePrinter::Cell(uint64_t{
                      ds.graph.Degree(theo.order[rank])}),
                  TablePrinter::CellPrec(theo.pdf[rank], 4),
                  TablePrinter::CellPrec(srw.pdf[rank], 4),
                  TablePrinter::CellPrec(we.pdf[rank], 4),
                  TablePrinter::CellPrec(theo.cdf[rank], 4),
                  TablePrinter::CellPrec(srw.cdf[rank], 4),
                  TablePrinter::CellPrec(we.cdf[rank], 4)});
  }
  table.Print(stdout);
  return 0;
}
