// Figure 8: relative error of AVG estimations vs query cost on the Twitter
// (-like) graph (directed preferential attachment reduced to mutual edges).
// Subfigures: (a) average in-degree, (b) average out-degree, (c) average
// shortest-path length (landmark attribute), (d) average local clustering
// coefficient — SRW baseline vs WE(SRW).
//
// Paper shape to reproduce: WE below SRW at matched query cost everywhere.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 1.0 = paper size), WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(6, 1.0);
  const SocialDataset ds = MakeTwitterLike(env.scale, env.seed);

  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 2;  // paper: h = 2 for Twitter
  wopts.estimate.base_reps = 12;
  wopts.estimate.max_extra_reps = 24;
  BurnInSampler::Options bopts;
  bopts.max_steps = 20000;

  std::vector<Subfigure> subs;
  const std::vector<AggregateSpec> aggregates = {
      {"avg_in_degree", "in_degree"},
      {"avg_out_degree", "out_degree"},
      {"avg_shortest_path", "path_len"},
      {"avg_clustering", "clustering"},
  };
  const char* tags[] = {"(a)", "(b)", "(c)", "(d)"};
  for (size_t i = 0; i < aggregates.size(); ++i) {
    subs.push_back({tags[i], MakeBurnInSpec("srw", bopts), aggregates[i]});
    subs.push_back({tags[i], MakeWalkEstimateSpec("srw", wopts),
                    aggregates[i]});
  }

  ErrorVsCostConfig config;
  config.sample_counts = {10, 20, 40, 80, 160};
  config.trials = env.trials;
  config.seed = env.seed;
  bench::RunErrorBench(
      "Figure 8: relative error vs query cost, Twitter-like", ds, subs,
      config);
  return 0;
}
