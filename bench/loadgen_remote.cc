// loadgen_remote: saturation bench for the wnw_serve service tier.
//
// Drives a wnw server over loopback with an asynchronous pipelined client —
// ONE client thread multiplexing every connection on its own EventLoop, so
// holding 512 requests in flight costs 512 pending frames, not 512 threads.
// For each concurrency level it issues --requests FetchNeighbors calls with
// exactly L in flight (each completion immediately issues the next), then
// prints a QPS vs latency-percentile saturation table:
//
//   in_flight   requests   elapsed_s        qps    p50_us    p99_us    max_us   threads
//          16      20000       0.61       32951      412       1190      2201         4
//         512      20000       0.52       38231     12104     16533     21012         4
//
// Percentiles are nearest-rank over the sorted sample; `threads` is the
// process's live OS thread peak (/proc/self/task) — the number that must
// NOT scale with in_flight.
//
// By default it embeds the server in-process (InMemoryBackend over a BA
// graph, reactor pool sized by --server-threads); --addr drives an external
// wnw_serve instead. Total threads stay <= 2 x cores either way: the
// client's reactor is 1 thread and the server's pool is fixed at startup.
//
// Usage:
//   loadgen_remote [--dataset ba:N,M] [--requests N] [--levels 16,128,512]
//                  [--connections K] [--server-threads N] [--addr HOST:PORT]
//                  [--seed S]
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "access/backend.h"
#include "graph/generators.h"
#include "net/event_loop.h"
#include "net/server.h"
#include "net/wire.h"
#include "random/rng.h"
#include "util/string_util.h"
#include "util/thread_stats.h"

namespace {

using namespace wnw;

struct Args {
  std::string dataset = "ba:50000,5";
  std::string addr;  // empty = embed the server in-process
  std::string levels = "16,128,512";
  uint64_t requests = 20000;
  uint64_t connections = 8;
  uint64_t server_threads = 0;  // 0 = ServerOptions default
  uint64_t seed = 20260808;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = next();
    if (v == nullptr) return false;
    if (flag == "--dataset") {
      args->dataset = v;
    } else if (flag == "--addr") {
      args->addr = v;
    } else if (flag == "--levels") {
      args->levels = v;
    } else if (flag == "--requests") {
      if (!ParseUint64(v, &args->requests) || args->requests == 0)
        return false;
    } else if (flag == "--connections") {
      if (!ParseUint64(v, &args->connections) || args->connections == 0 ||
          args->connections > 64)
        return false;
    } else if (flag == "--server-threads") {
      if (!ParseUint64(v, &args->server_threads)) return false;
    } else if (flag == "--seed") {
      if (!ParseUint64(v, &args->seed)) return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(flag).c_str());
      return false;
    }
  }
  return true;
}

// One pipelined client connection; every field is loop-affine.
struct ClientConn {
  int fd = -1;
  std::vector<std::byte> in;
  std::vector<std::byte> out;
  size_t out_pos = 0;
  bool want_write = false;
};

/// The asynchronous driver for one concurrency level. Lives on the loop
/// thread end to end; the main thread only waits on `done`.
class LevelDriver {
 public:
  LevelDriver(net::EventLoop* loop, std::vector<ClientConn>* conns,
              std::span<const NodeId> nodes)
      : loop_(loop), conns_(conns), nodes_(nodes) {}

  // Returns per-request latencies (seconds) and fills *elapsed.
  std::vector<double> Run(size_t in_flight, double* elapsed) {
    latencies_.clear();
    latencies_.reserve(nodes_.size());
    issued_ = completed_ = 0;
    done_ = false;
    loop_->Post([this, in_flight] {
      start_time_ = loop_->NowSeconds();
      const size_t first = std::min(in_flight, nodes_.size());
      for (size_t i = 0; i < first; ++i) {
        Issue(&(*conns_)[i % conns_->size()]);
      }
      for (auto& conn : *conns_) Flush(&conn);
    });
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    *elapsed = end_time_ - start_time_;
    return std::move(latencies_);
  }

  void OnIo(ClientConn* conn, uint32_t events) {
    if (events & net::kEventWrite) Flush(conn);
    if ((events & net::kEventRead) == 0) return;
    char buf[64 * 1024];
    while (conn->fd >= 0) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        const std::byte* bytes = reinterpret_cast<const std::byte*>(buf);
        conn->in.insert(conn->in.end(), bytes, bytes + n);
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      Die(n == 0 ? "server closed the connection" : std::strerror(errno));
    }
    size_t consumed = 0;
    while (consumed < conn->in.size()) {
      net::DecodedFrame frame;
      auto taken = net::DecodeFrame(
          std::span<const std::byte>(conn->in).subspan(consumed), &frame);
      if (!taken.ok()) Die(taken.status().ToString().c_str());
      if (*taken == 0) break;
      consumed += *taken;
      if (frame.status != StatusCode::kOk) Die("error response from server");
      const auto it = starts_.find(frame.request_id);
      if (it == starts_.end()) Die("unknown request id in response");
      const double now = loop_->NowSeconds();
      latencies_.push_back(now - it->second);
      starts_.erase(it);
      ++completed_;
      if (issued_ < nodes_.size()) {
        Issue(conn);
        Flush(conn);
      } else if (completed_ == nodes_.size()) {
        end_time_ = now;
        {
          std::lock_guard<std::mutex> lock(mu_);
          done_ = true;
        }
        cv_.notify_all();
      }
    }
    if (consumed > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() + static_cast<ptrdiff_t>(consumed));
    }
  }

 private:
  [[noreturn]] void Die(const char* why) {
    std::fprintf(stderr, "loadgen: fatal: %s\n", why);
    std::exit(1);
  }

  void Issue(ClientConn* conn) {
    const uint64_t id = next_id_++;
    std::vector<std::byte> payload;
    net::EncodeFetchRequest(nodes_[issued_], &payload);
    ++issued_;
    net::Frame frame;
    frame.opcode = net::Opcode::kFetchNeighbors;
    frame.request_id = id;
    frame.payload = payload;
    net::EncodeFrame(frame, &conn->out);
    starts_[id] = loop_->NowSeconds();
  }

  void Flush(ClientConn* conn) {
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          (void)loop_->Modify(conn->fd, net::kEventRead | net::kEventWrite);
        }
        return;
      }
      Die(std::strerror(errno));
    }
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->want_write) {
      conn->want_write = false;
      (void)loop_->Modify(conn->fd, net::kEventRead);
    }
  }

  net::EventLoop* loop_;
  std::vector<ClientConn>* conns_;
  std::span<const NodeId> nodes_;

  uint64_t next_id_ = 1;
  size_t issued_ = 0;
  size_t completed_ = 0;
  double start_time_ = 0.0;
  double end_time_ = 0.0;
  std::unordered_map<uint64_t, double> starts_;
  std::vector<double> latencies_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

int ConnectBlocking(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &dst.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// value with at least ceil(p*N) observations at or below it. The naive
/// `p * (N-1)` index truncates downward — at N=20000 it reports p99 as the
/// 19800th order statistic instead of the 19900th, flattering the tail by
/// a full 0.5%.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  const size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: loadgen_remote [--dataset ba:N,M] [--requests N]\n"
                 "                      [--levels 16,128,512] "
                 "[--connections K]\n"
                 "                      [--server-threads N] [--addr H:P] "
                 "[--seed S]\n");
    return 2;
  }

  // Embedded server (unless --addr points elsewhere).
  std::unique_ptr<net::WnwServer> server;
  std::string host = "127.0.0.1";
  int port = 0;
  uint64_t num_nodes = 0;
  Graph graph;
  if (args.addr.empty()) {
    if (args.dataset.rfind("ba:", 0) != 0) {
      std::fprintf(stderr, "loadgen: --dataset must be ba:N,M\n");
      return 2;
    }
    // A view into args.dataset, not a substr temporary: the returned
    // views must outlive this statement.
    const std::string_view ba_spec =
        std::string_view(args.dataset).substr(3);
    const auto parts = SplitString(ba_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      std::fprintf(stderr, "loadgen: --dataset must be ba:N,M\n");
      return 2;
    }
    Rng graph_rng(args.seed);
    auto generated = MakeBarabasiAlbert(static_cast<NodeId>(n),
                                        static_cast<uint32_t>(m), graph_rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
    num_nodes = graph.num_nodes();
    auto backend = std::make_shared<InMemoryBackend>(&graph);
    net::ServerOptions options;
    options.threads = static_cast<int>(args.server_threads);
    auto started = net::WnwServer::Start(backend, options);
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
    port = server->port();
    std::fprintf(stderr,
                 "loadgen: embedded server — %llu nodes, %d reactor "
                 "threads, port %d\n",
                 static_cast<unsigned long long>(num_nodes),
                 server->threads(), port);
  } else {
    const size_t colon = args.addr.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "loadgen: --addr must be host:port\n");
      return 2;
    }
    host = args.addr.substr(0, colon);
    if (host == "localhost") host = "127.0.0.1";
    uint64_t parsed_port = 0;
    if (!ParseUint64(args.addr.substr(colon + 1), &parsed_port) ||
        parsed_port > 65535) {
      std::fprintf(stderr, "loadgen: --addr must be host:port\n");
      return 2;
    }
    port = static_cast<int>(parsed_port);
  }

  // Client reactor: ONE thread for every connection and every level.
  auto loop_or = net::EventLoop::Create();
  if (!loop_or.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 loop_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::EventLoop> loop = std::move(loop_or).value();

  std::vector<ClientConn> conns(args.connections);
  for (auto& conn : conns) {
    conn.fd = ConnectBlocking(host, port);
    if (conn.fd < 0) {
      std::fprintf(stderr, "loadgen: cannot connect to %s:%d\n",
                   host.c_str(), port);
      return 1;
    }
  }

  // External server: learn the node-id domain from the Stats handshake.
  if (num_nodes == 0) {
    std::vector<std::byte> payload;
    net::Frame request;
    request.opcode = net::Opcode::kStats;
    request.request_id = 1;
    std::vector<std::byte> wire;
    net::EncodeFrame(request, &wire);
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(conns[0].fd, wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        std::fprintf(stderr, "loadgen: handshake send failed\n");
        return 1;
      }
      sent += static_cast<size_t>(n);
    }
    std::vector<std::byte> in;
    net::DecodedFrame frame;
    while (true) {
      auto taken = net::DecodeFrame(in, &frame);
      if (!taken.ok()) {
        std::fprintf(stderr, "loadgen: %s\n",
                     taken.status().ToString().c_str());
        return 1;
      }
      if (*taken > 0) break;
      char buf[4096];
      const ssize_t n = ::recv(conns[0].fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        std::fprintf(stderr, "loadgen: handshake recv failed\n");
        return 1;
      }
      const std::byte* bytes = reinterpret_cast<const std::byte*>(buf);
      in.insert(in.end(), bytes, bytes + n);
    }
    auto stats = net::DecodeStatsReply(frame.payload);
    if (!stats.ok() || stats->num_nodes == 0) {
      std::fprintf(stderr, "loadgen: bad Stats handshake\n");
      return 1;
    }
    num_nodes = stats->num_nodes;
    std::fprintf(stderr, "loadgen: external server %s:%d — %llu nodes\n",
                 host.c_str(), port,
                 static_cast<unsigned long long>(num_nodes));
  }

  // Register the (now non-blocking) connections and start the reactor.
  std::vector<NodeId> nodes(args.requests);
  Rng rng(args.seed ^ 0x10adull);
  for (auto& node : nodes) {
    node = static_cast<NodeId>(rng.NextBounded(num_nodes));
  }
  LevelDriver driver(loop.get(), &conns, nodes);
  for (auto& conn : conns) {
    const int flags = ::fcntl(conn.fd, F_GETFL, 0);
    ::fcntl(conn.fd, F_SETFL, flags | O_NONBLOCK);
    ClientConn* raw = &conn;
    const Status added =
        loop->Add(conn.fd, net::kEventRead,
                  [&driver, raw](uint32_t events) { driver.OnIo(raw, events); });
    if (!added.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  std::thread loop_thread([&loop] { loop->Run(); });

  std::vector<uint64_t> levels;
  for (const auto level : SplitString(args.levels, ",")) {
    uint64_t parsed = 0;
    if (!ParseUint64(level, &parsed) || parsed == 0) {
      std::fprintf(stderr, "loadgen: bad --levels entry '%s'\n",
                   std::string(level).c_str());
      return 2;
    }
    levels.push_back(parsed);
  }

  // Thread peak is the point of the architecture: 512 in flight must not
  // mean 512 threads. Sampled per level from /proc (client reactor + the
  // embedded server's fixed pool; both persist, so an end-of-level sample
  // is the peak).
  int thread_peak = CountProcessThreads();
  std::printf("%10s %10s %10s %10s %9s %9s %9s %9s %8s\n", "in_flight",
              "requests", "elapsed_s", "qps", "p50_us", "p90_us", "p99_us",
              "max_us", "threads");
  for (const uint64_t level : levels) {
    double elapsed = 0.0;
    std::vector<double> latencies =
        driver.Run(static_cast<size_t>(level), &elapsed);
    std::sort(latencies.begin(), latencies.end());
    const double qps =
        elapsed > 0.0 ? static_cast<double>(latencies.size()) / elapsed : 0.0;
    thread_peak = std::max(thread_peak, CountProcessThreads());
    std::printf("%10llu %10zu %10.3f %10.0f %9.0f %9.0f %9.0f %9.0f %8d\n",
                static_cast<unsigned long long>(level), latencies.size(),
                elapsed, qps, Percentile(latencies, 0.50) * 1e6,
                Percentile(latencies, 0.90) * 1e6,
                Percentile(latencies, 0.99) * 1e6,
                latencies.empty() ? 0.0 : latencies.back() * 1e6,
                thread_peak);
  }

  loop->Stop();
  loop_thread.join();
  for (auto& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  return 0;
}
