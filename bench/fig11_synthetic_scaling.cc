// Figure 11: average-degree estimation on synthetic Barabási–Albert graphs
// with 10,000 / 15,000 / 20,000 nodes (m = 5): (a) relative error vs query
// cost, (b) relative error vs number of samples. SRW input.
//
// Paper shape to reproduce: both SRW and WE cost more on larger graphs,
// but WE consistently outperforms SRW at every size; error-vs-samples
// curves are essentially size-independent.
//
// Env: WNW_TRIALS (default 8), WNW_SCALE (scales node counts, default 1.0),
//      WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(8, 1.0);

  for (const uint32_t base : {10000u, 15000u, 20000u}) {
    const NodeId n = static_cast<NodeId>(
        std::max(1000.0, base * env.scale));
    const SocialDataset ds = MakeSyntheticBA(n, 5, env.seed + n);

    WalkEstimateOptions wopts;
    wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
    wopts.estimate.crawl_hops = 2;  // paper: h = 2 for synthetic graphs
    wopts.estimate.base_reps = 10;
    BurnInSampler::Options bopts;
    bopts.max_steps = 20000;

    std::vector<Subfigure> subs;
    const AggregateSpec avg_degree{"avg_degree", ""};
    subs.push_back({"(a&b)", MakeBurnInSpec("srw", bopts), avg_degree});
    subs.push_back({"(a&b)", MakeWalkEstimateSpec("srw", wopts), avg_degree});

    ErrorVsCostConfig config;
    config.sample_counts = {10, 25, 50, 100, 200};
    config.trials = env.trials;
    config.seed = env.seed;
    bench::RunErrorBench(
        StrFormat("Figure 11: synthetic BA n=%u (SRW input)", n), ds, subs,
        config);
    std::printf("\n");
  }
  return 0;
}
