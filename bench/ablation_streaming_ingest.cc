// Streaming-ingest ablation + acceptance gate (storage/ingest.h): the
// external-sort pipeline must build a snapshot several times larger than
// its memory budget without the process RSS ever exceeding the budget plus
// a fixed slack, and the file it writes must be byte-identical to the
// in-memory writer's.
//
//   bounded-rss — ingest a uniform-random multigraph whose snapshot is at
//     least 4x the 8 MiB budget; the VmHWM delta across the ingest must
//     stay within budget + slack. RLIMIT_AS is armed during the ingest as
//     a hard backstop (restored afterwards so the verification mmap can
//     map the finished file), so "accidentally materialize the CSR" turns
//     into a loud failure rather than a quietly fat process.
//
//   identity — the streamed file must be byte-for-byte identical to
//     WriteGraphSnapshot over the graph built in memory from the same
//     stream: on the big bounded-rss graph, on a small multi-run ingest
//     (tiny sort buffer, fan-in 2: hundreds of runs, several merge
//     passes), and on a scale-free BA graph fed through the
//     GraphEdgeSource adapter.
//
//   throughput — ingest edges/s is measured and reported (no threshold:
//     CI machines vary too much; the JSON artifact tracks the trend).
//
// Exits nonzero on any violation. Env: WNW_SEED, WNW_SCALE,
// WNW_BENCH_JSON (gate report for the CI artifact, BENCH_ingest.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#endif

#include "experiments/harness.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "storage/ingest.h"
#include "storage/snapshot.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace wnw;

constexpr uint64_t kBudgetBytes = 8ull << 20;
// Fixed allowance on top of the budget for everything the pipeline cannot
// reasonably count: allocator slop, stdio machinery, code+stack, the edge
// batch. The gate is budget + slack, measured over the whole process.
constexpr uint64_t kSlackBytes = 16ull << 20;

std::string BenchPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// Peak resident set of this process so far, from /proc (0 off-Linux — the
// RSS gate is skipped there but identity still runs).
uint64_t ReadVmHwmBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

uint64_t ReadVmSizeBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0;
  const int got = std::fscanf(f, "%llu", &vm_pages);
  std::fclose(f);
  return got == 1 ? uint64_t{vm_pages} * 4096 : 0;
#else
  return 0;
#endif
}

// Arms a soft RLIMIT_AS backstop for the duration of the ingest; Disarm()
// restores the original limits so the post-ingest verification can mmap
// the (deliberately larger-than-budget) snapshot.
class AddressSpaceBackstop {
 public:
  explicit AddressSpaceBackstop(uint64_t extra_bytes) {
#if defined(__linux__)
    if (::getrlimit(RLIMIT_AS, &saved_) != 0) return;
    const uint64_t vm_now = ReadVmSizeBytes();
    if (vm_now == 0) return;
    struct rlimit capped = saved_;
    cap_ = vm_now + extra_bytes;
    capped.rlim_cur = cap_;
    if (::setrlimit(RLIMIT_AS, &capped) != 0) cap_ = 0;
#else
    (void)extra_bytes;
#endif
  }
  void Disarm() {
#if defined(__linux__)
    if (cap_ != 0) ::setrlimit(RLIMIT_AS, &saved_);
#endif
    cap_ = 0;
  }
  ~AddressSpaceBackstop() { Disarm(); }

  uint64_t cap() const { return cap_; }

 private:
#if defined(__linux__)
  struct rlimit saved_ {};
#endif
  uint64_t cap_ = 0;
};

bool FilesIdentical(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa.is_open() || !fb.is_open()) return false;
  std::vector<char> ba(1 << 20), bb(1 << 20);
  for (;;) {
    fa.read(ba.data(), static_cast<std::streamsize>(ba.size()));
    fb.read(bb.data(), static_cast<std::streamsize>(bb.size()));
    if (fa.gcount() != fb.gcount()) return false;
    if (fa.gcount() == 0) return !fa.bad() && !fb.bad();
    if (std::memcmp(ba.data(), bb.data(),
                    static_cast<size_t>(fa.gcount())) != 0) {
      return false;
    }
  }
}

bool ByteIdentityCase(EdgeSource& streamed_source, const Graph& reference,
                      const storage::IngestOptions& options,
                      const char* tag) {
  const std::string streamed_path =
      BenchPath("wnw_ingest_bench_streamed.snap");
  const std::string reference_path =
      BenchPath("wnw_ingest_bench_reference.snap");
  bool ok = true;
  const auto stats =
      storage::StreamGraphSnapshot(streamed_source, streamed_path, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "GATE: %s: streaming ingest failed: %s\n", tag,
                 stats.status().ToString().c_str());
    return false;
  }
  if (const Status s = WriteGraphSnapshot(reference, reference_path);
      !s.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", tag, s.ToString().c_str());
    return false;
  }
  if (!FilesIdentical(streamed_path, reference_path)) {
    std::fprintf(stderr,
                 "GATE: %s: streamed snapshot differs from the in-memory "
                 "writer's bytes\n",
                 tag);
    ok = false;
  } else {
    std::printf("# identity: %s — %llu edges, %llu runs, %llu merge "
                "passes, byte-identical\n",
                tag, static_cast<unsigned long long>(stats->input_edges),
                static_cast<unsigned long long>(stats->sorted_runs),
                static_cast<unsigned long long>(stats->merge_passes));
  }
  std::remove(streamed_path.c_str());
  std::remove(reference_path.c_str());
  return ok;
}

int Run() {
  const BenchEnv env = ReadBenchEnv(/*default_trials=*/1,
                                    /*default_scale=*/1.0);
  bool ok = true;

  // --- gate 1: bounded peak RSS on an out-of-core ingest -------------------
  // The RSS measurement MUST run before anything builds a big in-memory
  // graph: VmHWM is a lifetime high-water mark, so any earlier resident
  // spike would mask what the ingest adds.
  const NodeId n = static_cast<NodeId>(
      std::max(600000.0, 2000000.0 * env.scale));
  const uint64_t m = uint64_t{n} * 8;
  const std::string big_path = BenchPath("wnw_ingest_bench_big.snap");

  storage::IngestOptions options;
  options.memory_budget_bytes = kBudgetBytes;

  const uint64_t hwm_before = ReadVmHwmBytes();
  storage::IngestStats big_stats;
  uint64_t as_cap = 0;
  {
    AddressSpaceBackstop backstop(kBudgetBytes + kSlackBytes +
                                  (32ull << 20));
    as_cap = backstop.cap();
    RandomEdgeSource source(n, m, env.seed);
    auto stats = storage::StreamGraphSnapshot(source, big_path, options);
    if (!stats.ok()) {
      std::fprintf(stderr, "GATE: out-of-core ingest failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    big_stats = *stats;
  }
  const uint64_t hwm_after = ReadVmHwmBytes();
  const uint64_t rss_delta =
      hwm_after > hwm_before ? hwm_after - hwm_before : 0;

  std::error_code ec;
  const uint64_t snapshot_bytes = std::filesystem::file_size(big_path, ec);
  if (ec || snapshot_bytes == 0) {
    std::fprintf(stderr, "error: cannot stat %s\n", big_path.c_str());
    return 1;
  }
  if (snapshot_bytes < 4 * kBudgetBytes) {
    std::fprintf(stderr,
                 "GATE: snapshot (%llu bytes) is not out-of-core relative "
                 "to the %llu-byte budget — the RSS gate would be vacuous\n",
                 static_cast<unsigned long long>(snapshot_bytes),
                 static_cast<unsigned long long>(kBudgetBytes));
    ok = false;
  }
  if (hwm_after == 0) {
    std::printf("# rss: VmHWM unavailable on this platform, gate skipped\n");
  } else if (rss_delta > kBudgetBytes + kSlackBytes) {
    std::fprintf(stderr,
                 "GATE: ingest peak RSS delta %llu bytes exceeded budget "
                 "%llu + slack %llu\n",
                 static_cast<unsigned long long>(rss_delta),
                 static_cast<unsigned long long>(kBudgetBytes),
                 static_cast<unsigned long long>(kSlackBytes));
    ok = false;
  } else {
    std::printf(
        "# rss: peak delta %llu bytes across a %llu-byte snapshot "
        "(budget %llu + slack %llu held)\n",
        static_cast<unsigned long long>(rss_delta),
        static_cast<unsigned long long>(snapshot_bytes),
        static_cast<unsigned long long>(kBudgetBytes),
        static_cast<unsigned long long>(kSlackBytes));
  }

  // The streamed file must verify (magic, checksum, CSR shape) like any
  // other snapshot — the loader is the reader of record.
  if (const auto info = ReadSnapshotInfo(big_path); !info.ok()) {
    std::fprintf(stderr, "GATE: streamed snapshot failed verification: %s\n",
                 info.status().ToString().c_str());
    ok = false;
  } else if (info->num_nodes != n || info->num_edges != big_stats.num_edges) {
    std::fprintf(stderr, "GATE: streamed snapshot meta disagrees with the "
                         "ingest stats\n");
    ok = false;
  }

  // --- gate 2: byte identity with the in-memory writer ---------------------
  // Big graph first (now that the RSS number is banked): same seed, same
  // stream, built through GraphBuilder.
  {
    const auto reference = MakeUniformRandomMultigraph(n, m, env.seed);
    if (!reference.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    const std::string reference_path =
        BenchPath("wnw_ingest_bench_bigref.snap");
    if (const Status s = WriteGraphSnapshot(*reference, reference_path);
        !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!FilesIdentical(big_path, reference_path)) {
      std::fprintf(stderr,
                   "GATE: out-of-core snapshot differs from the in-memory "
                   "writer's bytes\n");
      ok = false;
    } else {
      std::printf("# identity: rand n=%u m=%llu out-of-core — "
                  "byte-identical to the in-memory writer\n",
                  static_cast<unsigned>(n),
                  static_cast<unsigned long long>(m));
    }
    std::remove(reference_path.c_str());
  }

  // Small multi-run case: tiny sort buffer + fan-in 2 forces hundreds of
  // runs and several merge passes.
  {
    const NodeId small_n = 20000;
    const uint64_t small_m = 120000;
    const auto reference =
        MakeUniformRandomMultigraph(small_n, small_m, env.seed + 1);
    if (!reference.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    storage::IngestOptions stressed;
    stressed.sort_buffer_entries = 4096;
    stressed.merge_fan_in = 2;
    RandomEdgeSource source(small_n, small_m, env.seed + 1);
    if (!ByteIdentityCase(source, *reference, stressed,
                          "rand multi-run (fan-in 2)")) {
      ok = false;
    }
  }

  // Scale-free BA graph through the adapter: skewed degrees, a hub row
  // spanning many sort chunks.
  {
    Rng rng(env.seed + 2);
    const auto ba = MakeBarabasiAlbert(30000, 6, rng);
    if (!ba.ok()) {
      std::fprintf(stderr, "error: %s\n", ba.status().ToString().c_str());
      return 1;
    }
    GraphEdgeSource source(&*ba);
    storage::IngestOptions stressed;
    stressed.sort_buffer_entries = 1 << 15;
    if (!ByteIdentityCase(source, *ba, stressed, "ba adapter")) ok = false;
  }

  // --- throughput (reported, not gated) ------------------------------------
  const double edges_per_second =
      big_stats.total_seconds > 0
          ? static_cast<double>(big_stats.input_edges) /
                big_stats.total_seconds
          : 0.0;

  TablePrinter table({"phase", "seconds", "runs", "merge_passes",
                      "edges_per_s"});
  table.AddComment(StrFormat(
      "Streaming ingest: rand n=%u m=%llu -> %llu-byte snapshot, budget "
      "%llu MiB + %llu MiB slack, AS cap %llu",
      static_cast<unsigned>(n), static_cast<unsigned long long>(m),
      static_cast<unsigned long long>(snapshot_bytes),
      static_cast<unsigned long long>(kBudgetBytes >> 20),
      static_cast<unsigned long long>(kSlackBytes >> 20),
      static_cast<unsigned long long>(as_cap)));
  table.AddRow({TablePrinter::Cell("sort+spill"),
                TablePrinter::CellPrec(big_stats.run_seconds, 3),
                TablePrinter::Cell(big_stats.sorted_runs),
                TablePrinter::Cell(uint64_t{0}), TablePrinter::Cell("-")});
  table.AddRow({TablePrinter::Cell("merge"),
                TablePrinter::CellPrec(big_stats.merge_seconds, 3),
                TablePrinter::Cell("-"),
                TablePrinter::Cell(big_stats.merge_passes),
                TablePrinter::Cell("-")});
  table.AddRow({TablePrinter::Cell("emit"),
                TablePrinter::CellPrec(big_stats.emit_seconds, 3),
                TablePrinter::Cell("-"), TablePrinter::Cell("-"),
                TablePrinter::Cell("-")});
  table.AddRow({TablePrinter::Cell("total"),
                TablePrinter::CellPrec(big_stats.total_seconds, 3),
                TablePrinter::Cell(big_stats.sorted_runs),
                TablePrinter::Cell(big_stats.merge_passes),
                TablePrinter::CellPrec(edges_per_second, 0)});
  table.Print(stdout);

  if (const char* json_path = std::getenv("WNW_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"ablation_streaming_ingest\",\n"
        "  \"graph_nodes\": %u,\n  \"input_edges\": %llu,\n"
        "  \"unique_edges\": %llu,\n  \"snapshot_bytes\": %llu,\n"
        "  \"budget_bytes\": %llu,\n  \"slack_bytes\": %llu,\n"
        "  \"peak_rss_delta_bytes\": %llu,\n"
        "  \"address_space_cap_bytes\": %llu,\n"
        "  \"sorted_runs\": %llu,\n  \"merge_passes\": %llu,\n"
        "  \"run_seconds\": %.4f,\n  \"merge_seconds\": %.4f,\n"
        "  \"emit_seconds\": %.4f,\n  \"total_seconds\": %.4f,\n"
        "  \"edges_per_second\": %.1f,\n  \"gate_ok\": %s\n}\n",
        static_cast<unsigned>(n),
        static_cast<unsigned long long>(big_stats.input_edges),
        static_cast<unsigned long long>(big_stats.num_edges),
        static_cast<unsigned long long>(snapshot_bytes),
        static_cast<unsigned long long>(kBudgetBytes),
        static_cast<unsigned long long>(kSlackBytes),
        static_cast<unsigned long long>(rss_delta),
        static_cast<unsigned long long>(as_cap),
        static_cast<unsigned long long>(big_stats.sorted_runs),
        static_cast<unsigned long long>(big_stats.merge_passes),
        big_stats.run_seconds, big_stats.merge_seconds,
        big_stats.emit_seconds, big_stats.total_seconds, edges_per_second,
        ok ? "true" : "false");
    std::fclose(f);
  }
  std::remove(big_path.c_str());

  if (!ok) return 1;
  std::printf(
      "# GATE OK: %llu-byte snapshot built under a %llu-byte budget "
      "(peak RSS delta %llu), byte-identical to the in-memory writer "
      "(%.0f edges/s)\n",
      static_cast<unsigned long long>(snapshot_bytes),
      static_cast<unsigned long long>(kBudgetBytes),
      static_cast<unsigned long long>(rss_delta), edges_per_second);
  return 0;
}

}  // namespace

int main() { return Run(); }
