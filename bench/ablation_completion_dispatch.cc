// Completion-dispatch ablation + acceptance gate: the promise PR 8 makes
// — a window of in-flight remote requests costs pending frames, not parked
// threads — checked against the thread-pool dispatch it replaced, over a
// REAL loopback wnw server in a forked child process (so the parent's
// /proc/self/task count measures only the client side: main thread, the
// RemoteBackend event loop, and whatever the executor spawns).
//
//   identity — for every registered sampler family, RunWalkEngine over the
//     remote backend must emit byte-identical per-walker samples at
//     identical logical query cost under BOTH dispatch modes, and both
//     must match the in-process run. A dispatcher that changes the
//     estimator is wrong, not fast.
//
//   threads — with 512 fetches in flight under completion dispatch, the
//     process's live OS thread count must stay <= cores + 4. This is the
//     whole point: the old dispatch parked one worker per window slot.
//
//   wall-clock — at each window in {64, 512}, completion dispatch must
//     match or beat thread-pool dispatch (best of WNW_TRIALS runs each,
//     with WNW_TOLERANCE slack, default 1.10): fewer threads may not cost
//     throughput.
//
// Exits nonzero on any violation. Env: WNW_TRIALS, WNW_SEED, WNW_SCALE
// (scales the graph and the request count), WNW_TOLERANCE, WNW_BENCH_JSON
// (when set, writes the sweep as JSON for the CI artifact).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/backend.h"
#include "access/completion_executor.h"
#include "access/remote_backend.h"
#include "core/registry.h"
#include "engine/walk_engine.h"
#include "experiments/harness.h"
#include "graph/generators.h"
#include "net/server.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_stats.h"

namespace {

using namespace wnw;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The served graph is rebuilt from (seed, n, m) on both sides of the
/// fork, so the parent's in-process identity runs walk the exact graph the
/// child serves without shipping it across.
Result<Graph> BuildGraph(uint64_t seed, NodeId n, uint32_t m) {
  Rng rng(seed);
  return MakeBarabasiAlbert(n, m, rng);
}

struct ServerChild {
  pid_t pid = -1;
  int port = 0;
};

/// Forks FIRST — before this process owns any threads — and stands the
/// server up in the child: its reactor pool, accept loop, and backend
/// never appear in the parent's /proc/self/task, so the thread gate
/// measures the client architecture and nothing else.
bool StartServerChild(uint64_t seed, NodeId n, uint32_t m,
                      ServerChild* child) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    auto graph = BuildGraph(seed, n, m);
    if (!graph.ok()) ::_exit(3);
    auto backend = std::make_shared<InMemoryBackend>(&*graph);
    auto server = net::WnwServer::Start(backend, {.threads = 2});
    if (!server.ok()) ::_exit(3);
    const int port = (*server)->port();
    if (::write(fds[1], &port, sizeof(port)) != sizeof(port)) ::_exit(3);
    ::close(fds[1]);
    for (;;) ::pause();  // parent SIGKILLs us when done
  }
  ::close(fds[1]);
  const bool got = ::read(fds[0], &child->port, sizeof(child->port)) ==
                   sizeof(child->port);
  ::close(fds[0]);
  child->pid = pid;
  if (!got) {
    std::fprintf(stderr, "GATE: server child died before reporting a port\n");
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  return true;
}

void StopServerChild(const ServerChild& child) {
  if (child.pid <= 0) return;
  ::kill(child.pid, SIGKILL);
  ::waitpid(child.pid, nullptr, 0);
}

RemoteBackendOptions ClientOptions() {
  RemoteBackendOptions options;
  options.connections = 2;
  options.deadline_ms = 10000.0;
  options.max_retries = 2;
  options.retry_backoff_ms = 10.0;
  options.connect_timeout_ms = 2000.0;
  return options;
}

struct IdentityCase {
  const char* family;  // registry name, for coverage accounting
  const char* spec;
};

// One spec per registered sampler family; the coverage check below fails
// the gate if the registry grows a family this table misses.
constexpr IdentityCase kIdentityCases[] = {
    {"walk", "walk:srw?steps=6"},
    {"burnin", "burnin:mhrw?max_steps=400"},
    {"longrun", "longrun:lazy?thinning=3&max_steps=400"},
    {"we", "we:mhrw?diameter=3"},
    {"we-path", "we-path:srw?diameter=3"},
};

constexpr const char* kDispatchModes[] = {"completion", "threads"};

/// Gate 1: in-process vs remote-completion vs remote-threads, per family.
bool RunIdentityGate(const Graph& graph, const std::string& addr,
                     uint64_t seed) {
  bool ok = true;
  std::vector<std::string> families;
  for (const IdentityCase& c : kIdentityCases) families.push_back(c.family);
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    if (std::find(families.begin(), families.end(), name) == families.end()) {
      std::fprintf(stderr,
                   "GATE: sampler family '%s' has no identity case\n",
                   name.c_str());
      ok = false;
    }
  }

  constexpr uint64_t kWalkers = 4;
  constexpr uint64_t kSamples = 3;
  int runs = 0;
  for (const IdentityCase& c : kIdentityCases) {
    EngineOptions local_options;
    local_options.walkers = kWalkers;
    local_options.samples_per_walker = kSamples;
    local_options.session.seed = seed;
    const auto local = RunWalkEngine(&graph, c.spec, local_options);
    if (!local.ok()) {
      std::fprintf(stderr, "GATE: local run failed for %s: %s\n", c.spec,
                   local.status().ToString().c_str());
      ok = false;
      continue;
    }

    for (const char* dispatch : kDispatchModes) {
      EngineOptions remote_options;
      remote_options.walkers = kWalkers;
      remote_options.samples_per_walker = kSamples;
      remote_options.session.seed = seed;
      remote_options.session.remote = ClientOptions();
      const std::string spec = StrFormat(
          "%s%cbackend=remote&addr=%s&window=8&dispatch=%s", c.spec,
          std::string_view(c.spec).find('?') == std::string_view::npos ? '?'
                                                                       : '&',
          addr.c_str(), dispatch);
      const auto remote = RunWalkEngine(&graph, spec, remote_options);
      ++runs;
      if (!remote.ok()) {
        std::fprintf(stderr, "GATE: remote run failed for %s: %s\n",
                     spec.c_str(), remote.status().ToString().c_str());
        ok = false;
        continue;
      }
      for (size_t w = 0; w < kWalkers; ++w) {
        const auto remote_span = remote->SamplesFor(w);
        const auto local_span = local->SamplesFor(w);
        if (!std::equal(remote_span.begin(), remote_span.end(),
                        local_span.begin(), local_span.end())) {
          std::fprintf(stderr,
                       "GATE: samples diverged: %s walker %zu (dispatch=%s)\n",
                       c.spec, w, dispatch);
          ok = false;
        }
        if (remote->walker_stats[w].query_cost !=
                local->walker_stats[w].query_cost ||
            remote->walker_stats[w].total_queries !=
                local->walker_stats[w].total_queries) {
          std::fprintf(
              stderr,
              "GATE: query cost diverged: %s walker %zu (dispatch=%s)\n",
              c.spec, w, dispatch);
          ok = false;
        }
      }
    }
  }
  if (ok) {
    std::printf(
        "# identity: %d remote engine runs (%zu families x %zu dispatch "
        "modes) byte-identical to in-process at identical query cost\n",
        runs, std::size(kIdentityCases), std::size(kDispatchModes));
  }
  return ok;
}

struct SweepPoint {
  int window = 0;
  const char* dispatch = "";
  double wall_seconds = 0.0;  // best of env.trials
  double qps = 0.0;
  int thread_peak = 0;  // sampled while the executor was live
  uint64_t pool_tasks = 0;
  uint64_t native = 0;
};

int Run() {
  const BenchEnv env = ReadBenchEnv(/*default_trials=*/3,
                                    /*default_scale=*/1.0);
  double tolerance = 1.10;
  if (const char* raw = std::getenv("WNW_TOLERANCE")) {
    tolerance = std::atof(raw);
    if (tolerance <= 0.0) {
      std::fprintf(stderr, "error: bad WNW_TOLERANCE '%s'\n", raw);
      return 1;
    }
  }

  const NodeId n = static_cast<NodeId>(20000.0 * env.scale);
  constexpr uint32_t kM = 5;
  ServerChild child;
  if (!StartServerChild(env.seed, n, kM, &child)) return 1;
  const std::string addr = StrFormat("127.0.0.1:%d", child.port);
  std::fprintf(stderr, "# server child pid %d serving BA n=%u m=%u on %s\n",
               static_cast<int>(child.pid), static_cast<unsigned>(n), kM,
               addr.c_str());

  int exit_code = 0;
  {
    const auto graph = BuildGraph(env.seed, n, kM);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      StopServerChild(child);
      return 1;
    }

    // --- gate 1: identity across dispatch modes -----------------------------
    bool ok = RunIdentityGate(*graph, addr, env.seed + 1);

    // --- gates 2+3: thread ceiling and wall-clock ---------------------------
    auto connected = RemoteBackend::Connect(addr, ClientOptions());
    if (!connected.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   connected.status().ToString().c_str());
      StopServerChild(child);
      return 1;
    }
    std::shared_ptr<RemoteBackend> remote = std::move(connected).value();

    const uint64_t kRequests =
        std::max<uint64_t>(512, static_cast<uint64_t>(4000.0 * env.scale));
    std::vector<NodeId> nodes(kRequests);
    Rng node_rng(env.seed + 2);
    for (NodeId& u : nodes) {
      u = static_cast<NodeId>(node_rng.NextBounded(n));
    }

    const int cores = std::max(1u, std::thread::hardware_concurrency());
    std::vector<SweepPoint> sweep;
    std::vector<std::vector<NodeId>> reference_lists;  // cross-mode identity
    for (const int window : {64, 512}) {
      for (const char* dispatch : kDispatchModes) {
        AsyncOptions options;
        options.window = window;
        options.threads = 0;
        options.dispatch = dispatch == std::string_view("completion")
                               ? AsyncOptions::Dispatch::kCompletion
                               : AsyncOptions::Dispatch::kThreadPool;
        SweepPoint point;
        point.window = window;
        point.dispatch = dispatch;
        point.wall_seconds = 0.0;
        for (int trial = 0; trial < env.trials; ++trial) {
          CompletionExecutor executor(options);
          const double t0 = NowSeconds();
          auto handle = executor.SubmitBatch(remote, nodes);
          auto reply = handle.Wait();
          const double wall = NowSeconds() - t0;
          // Sample while the executor (and its persistent pool) is live:
          // pool workers are never reaped before destruction, so this IS
          // the peak for the trial.
          point.thread_peak =
              std::max(point.thread_peak, CountProcessThreads());
          const auto stats = executor.stats();
          point.pool_tasks = stats.pool_tasks;
          point.native = stats.native_completions;
          if (!reply.ok()) {
            std::fprintf(stderr, "GATE: batch failed (window=%d, %s): %s\n",
                         window, dispatch,
                         reply.status().ToString().c_str());
            ok = false;
            break;
          }
          if (reference_lists.empty()) {
            reference_lists = reply->lists;
          } else if (reply->lists != reference_lists) {
            std::fprintf(stderr,
                         "GATE: batch replies diverged across modes "
                         "(window=%d, %s)\n",
                         window, dispatch);
            ok = false;
          }
          if (trial == 0 || wall < point.wall_seconds) {
            point.wall_seconds = wall;
          }
        }
        point.qps = point.wall_seconds > 0.0
                        ? static_cast<double>(kRequests) / point.wall_seconds
                        : 0.0;
        sweep.push_back(point);
      }
    }

    TablePrinter table({"window", "dispatch", "wall_s", "qps", "threads",
                        "native", "pool_tasks"});
    table.AddComment(StrFormat(
        "Completion-dispatch sweep: %llu FetchNeighbors over loopback "
        "(best of %d; cores=%d)",
        static_cast<unsigned long long>(kRequests), env.trials, cores));
    for (const SweepPoint& p : sweep) {
      table.AddRow({TablePrinter::Cell(static_cast<uint64_t>(p.window)),
                    TablePrinter::Cell(p.dispatch),
                    TablePrinter::CellPrec(p.wall_seconds, 4),
                    TablePrinter::Cell(StrFormat("%.0f", p.qps)),
                    TablePrinter::Cell(static_cast<uint64_t>(p.thread_peak)),
                    TablePrinter::Cell(p.native),
                    TablePrinter::Cell(p.pool_tasks)});
    }
    table.Print(stdout);

    if (const char* json_path = std::getenv("WNW_BENCH_JSON")) {
      std::FILE* f = std::fopen(json_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path);
        StopServerChild(child);
        return 1;
      }
      std::fprintf(f,
                   "{\n  \"bench\": \"ablation_completion_dispatch\",\n"
                   "  \"graph_nodes\": %u,\n  \"requests\": %llu,\n"
                   "  \"cores\": %d,\n  \"sweep\": [\n",
                   static_cast<unsigned>(n),
                   static_cast<unsigned long long>(kRequests), cores);
      for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint& p = sweep[i];
        std::fprintf(
            f,
            "    {\"window\": %d, \"dispatch\": \"%s\", "
            "\"wall_seconds\": %.6f, \"qps\": %.1f, \"thread_peak\": %d, "
            "\"native_completions\": %llu, \"pool_tasks\": %llu}%s\n",
            p.window, p.dispatch, p.wall_seconds, p.qps, p.thread_peak,
            static_cast<unsigned long long>(p.native),
            static_cast<unsigned long long>(p.pool_tasks),
            i + 1 < sweep.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
    }

    for (size_t i = 0; i + 1 < sweep.size(); i += 2) {
      const SweepPoint& completion = sweep[i];
      const SweepPoint& threads = sweep[i + 1];
      if (completion.window == 512 &&
          completion.thread_peak > cores + 4) {
        std::fprintf(stderr,
                     "GATE: completion dispatch at window=512 reached %d "
                     "live threads (limit cores+4 = %d)\n",
                     completion.thread_peak, cores + 4);
        ok = false;
      }
      if (completion.wall_seconds > threads.wall_seconds * tolerance) {
        std::fprintf(stderr,
                     "GATE: completion dispatch at window=%d took %.4fs vs "
                     "thread pool %.4fs (tolerance %.2fx)\n",
                     completion.window, completion.wall_seconds,
                     threads.wall_seconds, tolerance);
        ok = false;
      }
      std::printf(
          "# window=%d: completion %.0f qps on %d threads vs pool %.0f qps "
          "on %d threads\n",
          completion.window, completion.qps, completion.thread_peak,
          threads.qps, threads.thread_peak);
    }

    if (!ok) {
      exit_code = 1;
    } else {
      std::printf(
          "# GATE OK: identity held across dispatch modes, completion kept "
          "threads <= cores+4 at window=512, and matched the pool's "
          "wall-clock\n");
    }
  }  // remote backend and executors destroyed before the server goes away

  StopServerChild(child);
  return exit_code;
}

}  // namespace

int main() { return Run(); }
