// §4.3 design-choice study: sensitivity of WALK-ESTIMATE to the walk
// length. The paper argues for a conservative setting (2*diameter+1)
// because cost rises sharply below the optimum but only slowly above it.
//
// Sweep: walk length from ~diameter/2 to 4*diameter on the GPlus-like
// graph; report acceptance rate, query cost per sample, and estimation
// error at a fixed sample count.
//
// Env: WNW_TRIALS (default 6), WNW_SCALE (default 0.2), WNW_SEED.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "datasets/social_datasets.h"
#include "estimation/aggregates.h"
#include "experiments/harness.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(6, 0.2);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);
  const int d = static_cast<int>(ds.diameter_estimate);
  const double truth = ds.graph.average_degree();

  TablePrinter table({"walk_length", "acceptance_rate", "cost_per_sample",
                      "api_calls_per_sample", "rel_error"});
  table.AddComment("Section 4.3: WE walk-length sensitivity (GPlus-like, "
                   "SRW input, 60 samples)");
  table.AddComment(StrFormat("diameter estimate d = %d; paper default "
                             "2d+1 = %d",
                             d, 2 * d + 1));

  std::vector<int> lengths = {std::max(2, d / 2), d,          2 * d + 1,
                              3 * d,              4 * d,      6 * d};
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());
  constexpr int kSamples = 60;
  for (int length : lengths) {
    double acc_rate = 0, cost = 0, calls = 0, err = 0;
    int completed = 0;
    for (int trial = 0; trial < env.trials; ++trial) {
      const uint64_t seed = Mix64(env.seed + 31 * trial + length);
      SessionOptions sopts;
      sopts.seed = seed + 1;
      auto session =
          std::move(SamplingSession::Open(
                        &ds.graph,
                        StrFormat("we:srw?walk_length=%d&crawl_hops=1",
                                  length),
                        sopts))
              .value();
      std::vector<NodeId> samples;
      (void)session->DrawInto(&samples, kSamples);
      if (samples.empty()) continue;
      auto deg = [&](NodeId u) {
        return static_cast<double>(ds.graph.Degree(u));
      };
      const double est =
          EstimateAverage(samples, session->bias(), deg, deg);
      const SessionStats stats = session->Stats();
      acc_rate += stats.acceptance_rate;
      cost += static_cast<double>(stats.query_cost) / samples.size();
      calls += static_cast<double>(stats.total_queries) / samples.size();
      err += RelativeError(est, truth);
      ++completed;
    }
    if (completed == 0) continue;
    table.AddRow({TablePrinter::Cell(length),
                  TablePrinter::CellPrec(acc_rate / completed, 3),
                  TablePrinter::CellPrec(cost / completed, 5),
                  TablePrinter::CellPrec(calls / completed, 5),
                  TablePrinter::CellPrec(err / completed, 3)});
  }
  table.Print(stdout);
  return 0;
}
