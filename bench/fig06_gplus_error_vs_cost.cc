// Figure 6: relative error of AVG estimations vs query cost on the Google
// Plus(-like) graph. Four subfigures: {SRW, MHRW} x {average degree,
// average self-description length}; each pits the Geweke-monitored input
// walk against WALK-ESTIMATE over the same input.
//
// Paper shape to reproduce: at matched query cost, WE's curve sits left/
// below the input walk's — lower error for the same number of queries.
//
// Env: WNW_TRIALS (default 10; paper used 100), WNW_SCALE (default 1.0 = 
// the paper's dataset size), WNW_SEED.
#include "bench/error_vs_cost_bench.h"
#include "datasets/social_datasets.h"

int main() {
  using namespace wnw;
  using wnw::bench::Subfigure;
  const BenchEnv env = ReadBenchEnv(10, 1.0);
  const SocialDataset ds = MakeGPlusLike(env.scale, env.seed);

  // Paper parameters (§7.1): d = 7 for Google Plus, crawl h = 1.
  WalkEstimateOptions wopts;
  wopts.diameter_bound = static_cast<int>(ds.diameter_estimate);
  wopts.estimate.crawl_hops = 1;
  BurnInSampler::Options bopts;
  bopts.max_steps = 20000;

  const AggregateSpec avg_degree{"avg_degree", ""};
  const AggregateSpec avg_desc{"avg_self_desc_len", "self_desc_len"};

  std::vector<Subfigure> subs;
  subs.push_back({"(a)", MakeBurnInSpec("srw", bopts), avg_degree});
  subs.push_back({"(a)", MakeWalkEstimateSpec("srw", wopts), avg_degree});
  subs.push_back({"(b)", MakeBurnInSpec("srw", bopts), avg_desc});
  subs.push_back({"(b)", MakeWalkEstimateSpec("srw", wopts), avg_desc});
  subs.push_back({"(c)", MakeBurnInSpec("mhrw", bopts), avg_degree});
  subs.push_back({"(c)", MakeWalkEstimateSpec("mhrw", wopts), avg_degree});
  subs.push_back({"(d)", MakeBurnInSpec("mhrw", bopts), avg_desc});
  subs.push_back({"(d)", MakeWalkEstimateSpec("mhrw", wopts), avg_desc});

  ErrorVsCostConfig config;
  config.sample_counts = {10, 20, 40, 80, 160};
  config.trials = env.trials;
  config.seed = env.seed;
  bench::RunErrorBench(
      "Figure 6: relative error vs query cost, Google Plus-like", ds, subs,
      config);
  return 0;
}
