// Figure 2: expected query cost per sample of IDEAL-WALK vs walk length,
// over the five theoretical graph models (Barbell, Cycle, Hypercube,
// balanced binary Tree, Barabási–Albert) with ~31 nodes each; uniform
// target distribution.
//
// Paper shape to reproduce: cost is infinite below the graph diameter,
// drops dramatically to a minimum, then rises slowly; larger-diameter
// models (cycle) bottom out at longer walks and higher cost.
//
// Env: WNW_SEED, WNW_DELTA_FACTOR (Delta = Gamma / factor, default 1e4).
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "experiments/harness.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mcmc/ideal_walk.h"
#include "mcmc/spectral.h"
#include "mcmc/transition.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

struct Model {
  std::string name;
  wnw::Graph graph;
  uint32_t diameter = 0;
};

}  // namespace

int main() {
  using namespace wnw;
  const BenchEnv env = ReadBenchEnv(1, 1.0);
  const double delta_factor = EnvDouble("WNW_DELTA_FACTOR", 1e4);
  Rng rng(env.seed);

  std::vector<Model> models;
  models.push_back({"Barbell", MakeBarbell(31).value()});
  models.push_back({"Cycle", MakeCycle(31).value()});
  models.push_back({"Hypercube", MakeHypercube(5).value()});
  models.push_back({"Tree", MakeBalancedBinaryTree(4).value()});
  models.push_back({"Barabasi", MakeBarabasiAlbert(31, 3, rng).value()});
  for (auto& m : models) m.diameter = ExactDiameter(m.graph).value();

  // Uniform target -> Metropolis-Hastings input walk.
  MetropolisHastingsWalk mhrw;

  TablePrinter table({"model", "walk_length", "query_cost"});
  table.AddComment("Figure 2: IDEAL-WALK query cost per sample vs walk "
                   "length (uniform target, MHRW input)");
  table.AddComment(StrFormat("Gamma = 1/n, Delta = Gamma/%g; 'inf' below "
                             "feasibility/diameter",
                             delta_factor));
  for (const auto& m : models) {
    const auto spec = ComputeSpectralGap(m.graph, mhrw).value();
    IdealWalkParams params;
    params.spectral_gap = spec.spectral_gap;
    params.gamma = 1.0 / m.graph.num_nodes();
    params.delta = params.gamma / delta_factor;
    params.max_degree = m.graph.max_degree();
    // Sweep far enough past each model's own optimum that the U-shape is
    // visible even for slow-mixing models (barbell's t_opt is ~2000 here
    // while the hypercube's is ~14).
    int t_max = 128;
    const auto opt = OptimalWalkLength(params);
    if (opt.ok()) {
      t_max = std::max(t_max, static_cast<int>(2.0 * opt.value()));
    }
    for (int t = 1; t <= t_max; t = t < 16 ? t + 1 : t + (t / 8)) {
      double cost = IdealWalkCost(params, t);
      if (t < static_cast<int>(m.diameter)) {
        cost = std::numeric_limits<double>::infinity();
      }
      table.AddRow({m.name, TablePrinter::Cell(t),
                    std::isinf(cost) ? "inf"
                                     : TablePrinter::CellPrec(cost, 5)});
    }
  }
  table.Print(stdout);

  // Companion summary: the analytic optimum per model.
  TablePrinter summary(
      {"model", "n", "diameter", "lambda", "t_opt", "cost_at_topt"});
  summary.AddComment("Figure 2 summary: Theorem 1 optima");
  for (const auto& m : models) {
    const auto spec = ComputeSpectralGap(m.graph, mhrw).value();
    IdealWalkParams params;
    params.spectral_gap = spec.spectral_gap;
    params.gamma = 1.0 / m.graph.num_nodes();
    params.delta = params.gamma / delta_factor;
    params.max_degree = m.graph.max_degree();
    const auto analysis = AnalyzeIdealWalk(params);
    if (!analysis.ok()) {
      summary.AddRow({m.name, TablePrinter::Cell(uint64_t{m.graph.num_nodes()}),
                      TablePrinter::Cell(uint64_t{m.diameter}),
                      TablePrinter::CellPrec(spec.spectral_gap, 4), "-", "-"});
      continue;
    }
    summary.AddRow({m.name, TablePrinter::Cell(uint64_t{m.graph.num_nodes()}),
                    TablePrinter::Cell(uint64_t{m.diameter}),
                    TablePrinter::CellPrec(spec.spectral_gap, 4),
                    TablePrinter::CellPrec(analysis->t_opt, 5),
                    TablePrinter::CellPrec(analysis->cost_at_topt, 5)});
  }
  std::printf("\n");
  summary.Print(stdout);
  return 0;
}
