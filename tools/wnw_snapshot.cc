// wnw_snapshot: builds, inspects, and verifies mmap-able graph snapshot
// files (the storage/snapshot.h container) from SNAP edge lists or the
// built-in synthetic datasets.
//
// Usage:
//   wnw_snapshot --input edges.txt [--lcc] --output graph.snap
//                [--shards N] [--partition hash|range|degree]
//   wnw_snapshot --dataset ba:N,M|rand:N,M|gplus|yelp|twitter|small
//                [--seed S] [--scale X] --output graph.snap [--shards N] [...]
//   wnw_snapshot --stream [--mem-budget-mb MB] [--temp-dir DIR] ...
//   wnw_snapshot --describe graph.snap
//
// Examples:
//   wnw_snapshot --input soc-Epinions1.txt --lcc --output epinions.snap
//   wnw_snapshot --dataset small --output small.snap --shards 4 \
//                --partition degree
//   wnw_snapshot --stream --mem-budget-mb 64 --dataset rand:10000000,80000000 \
//                --output huge.snap
//   wnw_sample --dataset small --spec "we:mhrw?snapshot=small.snap"
//
// --lcc keeps only the largest connected component (what wnw_sample does to
// --graph inputs, so snapshots built with it serve identical topologies).
// With --input, the source file's node ids are preserved in the snapshot's
// original-id table. With --shards, per-shard CSR sections are written too,
// so a sharded origin serves each shard straight from the mapping.
//
// --stream routes construction through storage::StreamingIngest (external
// sort, bounded peak RSS — docs/STORAGE.md): the CSR is never resident, so
// the graph may be far larger than memory. The output is byte-identical to
// the in-memory path for the same source. Incompatible with --lcc and
// --shards, which need the whole graph in memory.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "datasets/social_datasets.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/sharded_graph.h"
#include "storage/ingest.h"
#include "storage/residency.h"
#include "storage/snapshot.h"
#include "util/string_util.h"

namespace {

using namespace wnw;

struct Args {
  std::string input_path;
  std::string dataset;
  std::string output;
  std::string describe;
  uint64_t seed = 20260611;
  double scale = 0.25;
  uint64_t shards = 0;
  std::string partition = "hash";
  bool lcc = false;
  bool stream = false;
  uint64_t mem_budget_mb = 64;
  std::string temp_dir;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wnw_snapshot --input FILE [--lcc] --output SNAP\n"
      "                    [--shards N] [--partition hash|range|degree]\n"
      "       wnw_snapshot --dataset SPEC [--seed S] [--scale X] --output "
      "SNAP [...]\n"
      "       wnw_snapshot --stream [--mem-budget-mb MB] [--temp-dir DIR] "
      "...\n"
      "       wnw_snapshot --describe SNAP\n"
      "dataset SPEC: ba:N,M | rand:N,M | gplus | yelp | twitter | small\n"
      "format reference: docs/STORAGE.md\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      args->input_path = v;
    } else if (flag == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      args->output = v;
    } else if (flag == "--describe") {
      const char* v = next();
      if (v == nullptr) return false;
      args->describe = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->seed)) return false;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &args->scale)) return false;
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->shards)) return false;
    } else if (flag == "--partition") {
      const char* v = next();
      if (v == nullptr) return false;
      args->partition = v;
    } else if (flag == "--lcc") {
      args->lcc = true;
    } else if (flag == "--stream") {
      args->stream = true;
    } else if (flag == "--mem-budget-mb") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->mem_budget_mb)) return false;
    } else if (flag == "--temp-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args->temp_dir = v;
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

struct SourceGraph {
  Graph graph;
  std::vector<uint64_t> original_id;  // empty = dense ids are original
};

Result<SourceGraph> LoadSource(const Args& args) {
  if (!args.input_path.empty()) {
    WNW_ASSIGN_OR_RETURN(LoadedGraph loaded, LoadEdgeList(args.input_path));
    if (!args.lcc) {
      return SourceGraph{std::move(loaded.graph),
                         std::move(loaded.original_id)};
    }
    WNW_ASSIGN_OR_RETURN(Subgraph lcc, LargestComponent(loaded.graph));
    // Compose the id maps: new dense id -> kept old dense id -> input id.
    std::vector<uint64_t> original;
    original.reserve(lcc.kept.size());
    for (NodeId old_id : lcc.kept) {
      original.push_back(loaded.original_id[old_id]);
    }
    return SourceGraph{std::move(lcc.graph), std::move(original)};
  }
  // Synthetic datasets: identical construction to wnw_sample's --dataset
  // for the same seed, so a snapshot of a dataset serves the exact graph a
  // dataset-built session walks.
  if (args.dataset.rfind("ba:", 0) == 0) {
    // A view into args.dataset, not a substr temporary: the returned
    // views must outlive this statement.
    const std::string_view ba_spec =
        std::string_view(args.dataset).substr(3);
    const auto parts = SplitString(ba_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      return Status::InvalidArgument("expected --dataset ba:N,M");
    }
    Rng rng(args.seed);
    WNW_ASSIGN_OR_RETURN(Graph graph,
                         MakeBarabasiAlbert(static_cast<NodeId>(n),
                                            static_cast<uint32_t>(m), rng));
    return SourceGraph{std::move(graph), {}};
  }
  if (args.dataset.rfind("rand:", 0) == 0) {
    const std::string_view rand_spec =
        std::string_view(args.dataset).substr(5);
    const auto parts = SplitString(rand_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      return Status::InvalidArgument("expected --dataset rand:N,M");
    }
    WNW_ASSIGN_OR_RETURN(
        Graph graph,
        MakeUniformRandomMultigraph(static_cast<NodeId>(n), m, args.seed));
    return SourceGraph{std::move(graph), {}};
  }
  if (args.dataset == "gplus") {
    return SourceGraph{MakeGPlusLike(args.scale, args.seed).graph, {}};
  }
  if (args.dataset == "yelp") {
    return SourceGraph{MakeYelpLike(args.scale, args.seed, false).graph, {}};
  }
  if (args.dataset == "twitter") {
    return SourceGraph{MakeTwitterLike(args.scale, args.seed, false).graph,
                       {}};
  }
  if (args.dataset == "small") {
    return SourceGraph{MakeSmallScaleFree(args.seed).graph, {}};
  }
  return Status::InvalidArgument("unknown dataset: " + args.dataset);
}

// The --stream path: construction through the external-sort ingest
// pipeline. rand:N,M and --input stay fully streaming; the other synthetic
// datasets are built in memory (their generators need global state) and fed
// through the GraphEdgeSource adapter, which still exercises the whole
// pipeline.
int RunStream(const Args& args) {
  storage::IngestOptions options;
  options.memory_budget_bytes = args.mem_budget_mb << 20;
  options.temp_dir = args.temp_dir;

  std::unique_ptr<EdgeSource> streaming_source;
  Graph built;  // backs the adapter for in-memory datasets
  if (!args.input_path.empty()) {
    auto opened = EdgeListFileSource::Open(args.input_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    streaming_source = std::move(opened).value();
  } else if (args.dataset.rfind("rand:", 0) == 0) {
    const std::string_view rand_spec =
        std::string_view(args.dataset).substr(5);
    const auto parts = SplitString(rand_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      std::fprintf(stderr, "error: expected --dataset rand:N,M\n");
      return 2;
    }
    streaming_source = std::make_unique<RandomEdgeSource>(
        static_cast<NodeId>(n), m, args.seed);
  } else {
    auto source = LoadSource(args);
    if (!source.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    built = std::move(source->graph);
    streaming_source = std::make_unique<GraphEdgeSource>(&built);
  }

  auto stats = storage::StreamGraphSnapshot(*streaming_source, args.output,
                                            options);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(
      stderr,
      "ingest: %llu input edges -> %llu nodes, %llu edges | %llu runs, "
      "%llu merge passes | %.2fs sort, %.2fs merge, %.2fs emit "
      "(%.0f edges/s)\n",
      static_cast<unsigned long long>(stats->input_edges),
      static_cast<unsigned long long>(stats->num_nodes),
      static_cast<unsigned long long>(stats->num_edges),
      static_cast<unsigned long long>(stats->sorted_runs),
      static_cast<unsigned long long>(stats->merge_passes),
      stats->run_seconds, stats->merge_seconds, stats->emit_seconds,
      stats->total_seconds > 0
          ? static_cast<double>(stats->input_edges) / stats->total_seconds
          : 0.0);
  return 0;
}

int Describe(const std::string& path) {
  auto info = ReadSnapshotInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "error: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: valid wnw graph snapshot (checksum OK)\n", path.c_str());
  std::printf("  nodes:        %llu\n",
              static_cast<unsigned long long>(info->num_nodes));
  std::printf("  edges:        %llu\n",
              static_cast<unsigned long long>(info->num_edges));
  std::printf("  degree:       min %u, max %u\n", info->min_degree,
              info->max_degree);
  std::printf("  original ids: %s\n", info->has_original_ids ? "yes" : "no");
  if (info->num_shards > 0) {
    std::printf("  shards:       %d (partition=%s)\n", info->num_shards,
                std::string(ShardPartitionKey(info->partition)).c_str());
  } else {
    std::printf("  shards:       none (flat CSR only)\n");
  }
  std::printf("  sections:     %zu\n", info->sections);
  std::printf("  file size:    %llu bytes\n",
              static_cast<unsigned long long>(info->file_bytes));

  // Paging breakdown for residency-budget tuning (docs/STORAGE.md): how many
  // pages each section spans, and the engine's derived block -> page-span
  // table — the spans a ResidencyManager charges against residency_mb=.
  // ReadSnapshotInfo above already verified the checksum; skip the rescan.
  auto file = storage::SnapshotFile::Open(path, storage::FileKind::kGraphSnapshot,
                                          {.verify_checksum = false});
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
#if defined(__unix__) || defined(__APPLE__)
  const uint64_t page = static_cast<uint64_t>(
      std::max<long>(1, ::sysconf(_SC_PAGESIZE)));
#else
  const uint64_t page = 4096;
#endif
  std::printf("  page size:    %llu bytes\n",
              static_cast<unsigned long long>(page));
  std::printf("  section pages (kind[index] offset length pages):\n");
  for (const storage::SnapshotFile::Record& r : file->records()) {
    const uint64_t first_page = r.offset / page;
    const uint64_t last_page = (r.offset + std::max<uint64_t>(r.length, 1) - 1) / page;
    std::printf("    %-13s[%u]  %10llu  %10llu  %6llu\n",
                std::string(storage::SectionKindName(r.kind)).c_str(),
                r.index, static_cast<unsigned long long>(r.offset),
                static_cast<unsigned long long>(r.length),
                static_cast<unsigned long long>(last_page - first_page + 1));
  }

  auto offsets =
      file->ArraySection<uint64_t>(storage::SectionKind::kOffsets);
  auto adjacency = file->Section(storage::SectionKind::kAdjacency);
  if (offsets.ok() && adjacency.ok() && offsets->size() >= 2) {
    const uint64_t n = offsets->size() - 1;
    const uint32_t block_nodes =
        std::max<uint32_t>(256, static_cast<uint32_t>(n / 64));
    const auto spans = storage::BuildBlockSpans(
        offsets->span(), adjacency->bytes(), sizeof(NodeId), block_nodes);
    uint64_t max_span = 0;
    for (const storage::BlockSpan& s : spans) {
      max_span = std::max<uint64_t>(max_span, s.size);
    }
    std::printf(
        "  engine blocks: %zu x %u nodes (the engine's default block= "
        "derivation), max span %llu bytes (%llu pages)\n",
        spans.size(), block_nodes, static_cast<unsigned long long>(max_span),
        static_cast<unsigned long long>((max_span + page - 1) / page));
    std::printf("  block page spans (block nodes file_offset bytes pages):\n");
    const std::byte* base = file->file()->data();
    constexpr size_t kMaxRows = 12;
    for (size_t b = 0; b < spans.size() && b < kMaxRows; ++b) {
      const uint64_t lo = b * static_cast<uint64_t>(block_nodes);
      const uint64_t hi = std::min<uint64_t>(n, lo + block_nodes);
      const storage::BlockSpan& s = spans[b];
      std::printf("    %5zu  [%llu, %llu)  %10llu  %10zu  %6llu\n", b,
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(
                      s.data != nullptr ? s.data - base : 0),
                  s.size,
                  static_cast<unsigned long long>((s.size + page - 1) / page));
    }
    if (spans.size() > kMaxRows) {
      std::printf("    ... %zu more blocks (same derivation)\n",
                  spans.size() - kMaxRows);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (!args.describe.empty()) return Describe(args.describe);
  if (args.output.empty() ||
      (args.input_path.empty() && args.dataset.empty())) {
    PrintUsage();
    return 2;
  }
  if (!args.input_path.empty() && !args.dataset.empty()) {
    std::fprintf(stderr, "pass --input or --dataset, not both\n");
    return 2;
  }
  if (args.shards > static_cast<uint64_t>(ShardedGraph::kMaxShards)) {
    std::fprintf(stderr, "shards must be in [1, %d]\n",
                 ShardedGraph::kMaxShards);
    return 2;
  }
  if (args.stream) {
    if (args.lcc || args.shards > 0) {
      std::fprintf(stderr,
                   "--stream is incompatible with --lcc and --shards (both "
                   "need the whole graph in memory)\n");
      return 2;
    }
    const int rc = RunStream(args);
    if (rc != 0) return rc;
    return Describe(args.output);
  }

  auto source = LoadSource(args);
  if (!source.ok()) {
    std::fprintf(stderr, "error: %s\n", source.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "graph: %s\n", source->graph.DebugString().c_str());

  SnapshotWriteOptions write_options;
  write_options.original_ids = source->original_id;
  ShardedGraph sharded;
  if (args.shards >= 1) {
    auto partition = ParseShardPartition(args.partition);
    if (!partition.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   partition.status().ToString().c_str());
      return 2;
    }
    auto sharded_or = ShardedGraph::FromGraph(
        source->graph, static_cast<int>(args.shards), *partition);
    if (!sharded_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   sharded_or.status().ToString().c_str());
      return 1;
    }
    sharded = *std::move(sharded_or);
    write_options.sharded = &sharded;
    std::fprintf(stderr, "sharded: %s\n", sharded.DebugString().c_str());
  }

  const Status written =
      WriteGraphSnapshot(source->graph, args.output, write_options);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  return Describe(args.output);
}
