// wnw_sample: command-line node sampler over an edge-list graph or a
// built-in synthetic dataset, exercising the library end to end.
//
// Usage:
//   wnw_sample [--graph FILE | --dataset ba:N,M|gplus|yelp|twitter|small]
//              [--sampler we|we-path|burnin|longrun] [--walk srw|mhrw]
//              [--samples N] [--seed S] [--scale X]
//              [--diameter-bound D] [--estimate-degree] [--quiet]
//
// Examples:
//   wnw_sample --dataset ba:20000,5 --sampler we --walk mhrw --samples 100
//   wnw_sample --graph my_edges.txt --sampler burnin --walk srw \
//              --samples 50 --estimate-degree
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/path_sampler.h"
#include "core/samplers.h"
#include "core/walk_estimate.h"
#include "datasets/social_datasets.h"
#include "estimation/aggregates.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "mcmc/transition.h"
#include "util/string_util.h"

namespace {

using namespace wnw;

struct Args {
  std::string graph_path;
  std::string dataset = "ba:10000,5";
  std::string sampler = "we";
  std::string walk = "srw";
  uint64_t samples = 100;
  uint64_t seed = 20260611;
  double scale = 0.25;
  int diameter_bound = 0;  // 0 = estimate via double sweep
  bool estimate_degree = false;
  bool quiet = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wnw_sample [--graph FILE | --dataset SPEC] [--sampler "
      "we|we-path|burnin|longrun]\n"
      "                  [--walk srw|mhrw] [--samples N] [--seed S]\n"
      "                  [--scale X] [--diameter-bound D]\n"
      "                  [--estimate-degree] [--quiet]\n"
      "dataset SPEC: ba:N,M | gplus | yelp | twitter | small\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--graph") {
      const char* v = next();
      if (v == nullptr) return false;
      args->graph_path = v;
    } else if (flag == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--sampler") {
      const char* v = next();
      if (v == nullptr) return false;
      args->sampler = v;
    } else if (flag == "--walk") {
      const char* v = next();
      if (v == nullptr) return false;
      args->walk = v;
    } else if (flag == "--samples") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->samples)) return false;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->seed)) return false;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &args->scale)) return false;
    } else if (flag == "--diameter-bound") {
      const char* v = next();
      uint64_t d = 0;
      if (v == nullptr || !ParseUint64(v, &d)) return false;
      args->diameter_bound = static_cast<int>(d);
    } else if (flag == "--estimate-degree") {
      args->estimate_degree = true;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

Result<Graph> LoadInputGraph(const Args& args) {
  if (!args.graph_path.empty()) {
    WNW_ASSIGN_OR_RETURN(LoadedGraph loaded, LoadEdgeList(args.graph_path));
    // Walk-based sampling needs one connected piece.
    WNW_ASSIGN_OR_RETURN(Subgraph lcc, LargestComponent(loaded.graph));
    return std::move(lcc.graph);
  }
  if (args.dataset.rfind("ba:", 0) == 0) {
    const auto parts = SplitString(args.dataset.substr(3), ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      return Status::InvalidArgument("expected --dataset ba:N,M");
    }
    Rng rng(args.seed);
    return MakeBarabasiAlbert(static_cast<NodeId>(n),
                              static_cast<uint32_t>(m), rng);
  }
  if (args.dataset == "gplus") {
    return MakeGPlusLike(args.scale, args.seed).graph;
  }
  if (args.dataset == "yelp") {
    return MakeYelpLike(args.scale, args.seed, false).graph;
  }
  if (args.dataset == "twitter") {
    return MakeTwitterLike(args.scale, args.seed, false).graph;
  }
  if (args.dataset == "small") {
    return MakeSmallScaleFree(args.seed).graph;
  }
  return Status::InvalidArgument("unknown dataset: " + args.dataset);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  auto graph_result = LoadInputGraph(args);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph graph = std::move(graph_result).value();
  std::fprintf(stderr, "graph: %s\n", graph.DebugString().c_str());

  auto design = MakeTransitionDesign(args.walk);
  if (design == nullptr) {
    std::fprintf(stderr, "error: unknown walk design '%s'\n",
                 args.walk.c_str());
    return 2;
  }

  int diameter_bound = args.diameter_bound;
  if (diameter_bound == 0) {
    Rng rng(args.seed + 1);
    diameter_bound = static_cast<int>(
        EstimateDiameterDoubleSweep(graph, rng).value_or(10));
    std::fprintf(stderr, "diameter bound (double sweep): %d\n",
                 diameter_bound);
  }

  AccessInterface access(&graph);
  Rng start_rng(args.seed + 2);
  const NodeId start =
      static_cast<NodeId>(start_rng.NextBounded(graph.num_nodes()));

  std::unique_ptr<Sampler> sampler;
  WalkEstimateOptions wopts;
  wopts.diameter_bound = diameter_bound;
  if (args.sampler == "we") {
    sampler = std::make_unique<WalkEstimateSampler>(&access, design.get(),
                                                    start, wopts, args.seed);
  } else if (args.sampler == "we-path") {
    WalkEstimatePathSampler::Options popts;
    popts.base = wopts;
    sampler = std::make_unique<WalkEstimatePathSampler>(
        &access, design.get(), start, popts, args.seed);
  } else if (args.sampler == "burnin") {
    sampler = std::make_unique<BurnInSampler>(&access, design.get(), start,
                                              BurnInSampler::Options{},
                                              args.seed);
  } else if (args.sampler == "longrun") {
    sampler = std::make_unique<OneLongRunSampler>(
        &access, design.get(), start, OneLongRunSampler::Options{},
        args.seed);
  } else {
    std::fprintf(stderr, "error: unknown sampler '%s'\n",
                 args.sampler.c_str());
    return 2;
  }

  std::vector<NodeId> samples;
  samples.reserve(args.samples);
  while (samples.size() < args.samples) {
    const auto s = sampler->Draw();
    if (!s.ok()) {
      std::fprintf(stderr, "draw failed: %s\n", s.status().ToString().c_str());
      break;
    }
    samples.push_back(s.value());
    if (!args.quiet) std::printf("%u\n", s.value());
  }

  std::fprintf(stderr,
               "drawn: %zu samples  query cost: %llu unique nodes "
               "(%llu API calls)\n",
               samples.size(),
               static_cast<unsigned long long>(access.query_cost()),
               static_cast<unsigned long long>(access.total_queries()));
  if (args.estimate_degree && !samples.empty()) {
    const bool uniform_target = args.walk == "mhrw";
    const double est = EstimateAverage(
        samples,
        uniform_target ? TargetBias::kUniform
                       : TargetBias::kStationaryWeighted,
        [&](NodeId u) { return static_cast<double>(graph.Degree(u)); },
        [&](NodeId u) { return static_cast<double>(graph.Degree(u)); });
    std::fprintf(stderr, "avg degree estimate: %.4f (true %.4f)\n", est,
                 graph.average_degree());
  }
  return 0;
}
