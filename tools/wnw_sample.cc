// wnw_sample: command-line node sampler over an edge-list graph or a
// built-in synthetic dataset, exercising the library end to end.
//
// The sampler is chosen with a registry spec string:
//   <sampler>[:<walk>][?key=value&...]
// e.g. "we:mhrw", "we:mhrw?variant=crawl&diameter=10",
//      "burnin:srw?max_steps=20000", "longrun:srw?thinning=4", "we-path:mhrw"
//
// Usage:
//   wnw_sample [--graph FILE | --dataset ba:N,M|gplus|yelp|twitter|small]
//              [--spec SPEC] [--samples N] [--seed S] [--scale X]
//              [--diameter-bound D] [--estimate-degree] [--quiet] [--json]
//              [--cache_file FILE]
//
// Examples:
//   wnw_sample --dataset ba:20000,5 --spec we:mhrw --samples 100
//   wnw_sample --graph my_edges.txt --spec "burnin:srw?max_steps=5000" \
//              --samples 50 --estimate-degree
//   wnw_sample --dataset small --samples 20 --json \
//              --spec "we:mhrw?backend=latency&mean_ms=50"
//   wnw_sample --dataset small --samples 20 \
//              --spec "we:mhrw?snapshot=small.snap"   # mmap'd origin
//   wnw_sample --dataset small --samples 20 --cache_file warm.wnwcache
//   wnw_sample --dataset ba:20000,5 --samples 4096 --json \
//              --spec "walk:srw?steps=8&engine=block&walkers=1024"
//
// --cache_file FILE persists the query cache across runs: the file is
// loaded when it exists (a warm start pays no queries for nodes any earlier
// run already fetched) and written back before exit.
//
// --json replaces the per-line sample output with one JSON object on stdout
// ({"spec", "samples": [...], "stats": {...}}) for scripting; diagnostics
// stay on stderr.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.h"
#include "core/session.h"
#include "datasets/social_datasets.h"
#include "engine/walk_engine.h"
#include "estimation/aggregates.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/string_util.h"

namespace {

using namespace wnw;

struct Args {
  std::string graph_path;
  std::string dataset = "ba:10000,5";
  std::string spec = "we:srw";
  std::string cache_file;
  uint64_t samples = 100;
  uint64_t seed = 20260611;
  double scale = 0.25;
  int diameter_bound = 0;  // 0 = estimate via double sweep
  bool estimate_degree = false;
  bool quiet = false;
  bool json = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wnw_sample [--graph FILE | --dataset SPEC] [--spec SAMPLER]\n"
      "                  [--samples N] [--seed S] [--scale X]\n"
      "                  [--diameter-bound D] [--estimate-degree] [--quiet]\n"
      "                  [--json] [--cache_file FILE]\n"
      "dataset SPEC: ba:N,M | rand:N,M | gplus | yelp | twitter | small\n"
      "sampler SPEC: <sampler>[:<walk>][?key=value&...], "
      "walk = srw|mhrw|lazy|maxdeg:<bound>\n"
      "registered samplers:\n");
  for (const auto& name : SamplerRegistry::Global().Names()) {
    std::fprintf(stderr, "  %-8s %s\n", name.c_str(),
                 SamplerRegistry::Global().Summary(name).c_str());
  }
  std::fprintf(stderr,
               "session-reserved spec keys (backend + async executor):\n");
  for (const ReservedKeyInfo& info : ReservedSessionKeys()) {
    std::fprintf(stderr, "  %-12.*s %.*s\n",
                 static_cast<int>(info.key.size()), info.key.data(),
                 static_cast<int>(info.summary.size()), info.summary.data());
  }
  std::fprintf(stderr,
               "full spec reference (keys, defaults, valid ranges): "
               "docs/SPEC_STRINGS.md\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--graph") {
      const char* v = next();
      if (v == nullptr) return false;
      args->graph_path = v;
    } else if (flag == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--spec") {
      const char* v = next();
      if (v == nullptr) return false;
      args->spec = v;
    } else if (flag == "--samples") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->samples)) return false;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &args->seed)) return false;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &args->scale)) return false;
    } else if (flag == "--diameter-bound") {
      const char* v = next();
      uint64_t d = 0;
      if (v == nullptr || !ParseUint64(v, &d)) return false;
      args->diameter_bound = static_cast<int>(d);
    } else if (flag == "--cache_file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->cache_file = v;
    } else if (flag == "--estimate-degree") {
      args->estimate_degree = true;
    } else if (flag == "--quiet") {
      args->quiet = true;
    } else if (flag == "--json") {
      args->json = true;
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

Result<Graph> LoadInputGraph(const Args& args) {
  if (!args.graph_path.empty()) {
    WNW_ASSIGN_OR_RETURN(LoadedGraph loaded, LoadEdgeList(args.graph_path));
    // Walk-based sampling needs one connected piece.
    WNW_ASSIGN_OR_RETURN(Subgraph lcc, LargestComponent(loaded.graph));
    return std::move(lcc.graph);
  }
  if (args.dataset.rfind("ba:", 0) == 0) {
    // A view into args.dataset, not a substr temporary: the returned
    // views must outlive this statement.
    const std::string_view ba_spec =
        std::string_view(args.dataset).substr(3);
    const auto parts = SplitString(ba_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      return Status::InvalidArgument("expected --dataset ba:N,M");
    }
    Rng rng(args.seed);
    return MakeBarabasiAlbert(static_cast<NodeId>(n),
                              static_cast<uint32_t>(m), rng);
  }
  if (args.dataset.rfind("rand:", 0) == 0) {
    const std::string_view rand_spec =
        std::string_view(args.dataset).substr(5);
    const auto parts = SplitString(rand_spec, ",");
    uint64_t n = 0, m = 0;
    if (parts.size() != 2 || !ParseUint64(parts[0], &n) ||
        !ParseUint64(parts[1], &m)) {
      return Status::InvalidArgument("expected --dataset rand:N,M");
    }
    // Same construction as wnw_snapshot's rand: dataset for the same seed,
    // so a streamed rand: snapshot serves the exact graph this builds.
    return MakeUniformRandomMultigraph(static_cast<NodeId>(n), m, args.seed);
  }
  if (args.dataset == "gplus") {
    return MakeGPlusLike(args.scale, args.seed).graph;
  }
  if (args.dataset == "yelp") {
    return MakeYelpLike(args.scale, args.seed, false).graph;
  }
  if (args.dataset == "twitter") {
    return MakeTwitterLike(args.scale, args.seed, false).graph;
  }
  if (args.dataset == "small") {
    return MakeSmallScaleFree(args.seed).graph;
  }
  return Status::InvalidArgument("unknown dataset: " + args.dataset);
}

// Emits samples plus the full SessionStats as one JSON object. Spec strings
// contain no characters needing escapes beyond quotes/backslashes (enforced
// by escaping anyway, for arbitrary registry names).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void PrintJson(const SessionStats& stats, const std::vector<NodeId>& samples) {
  std::printf("{\n  \"spec\": \"%s\",\n", JsonEscape(stats.spec).c_str());
  std::printf("  \"samples\": [");
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ", ", samples[i]);
  }
  std::printf("],\n");
  std::printf("  \"stats\": {\n");
  std::printf("    \"sampler\": \"%s\",\n", JsonEscape(stats.sampler).c_str());
  std::printf("    \"backend\": \"%s\",\n", JsonEscape(stats.backend).c_str());
  std::printf("    \"samples_drawn\": %llu,\n",
              static_cast<unsigned long long>(stats.samples_drawn));
  std::printf("    \"query_cost\": %llu,\n",
              static_cast<unsigned long long>(stats.query_cost));
  std::printf("    \"total_queries\": %llu,\n",
              static_cast<unsigned long long>(stats.total_queries));
  std::printf("    \"backend_fetches\": %llu,\n",
              static_cast<unsigned long long>(stats.backend_fetches));
  std::printf("    \"shared_cache_hits\": %llu,\n",
              static_cast<unsigned long long>(stats.shared_cache_hits));
  std::printf("    \"prefetch_batches\": %llu,\n",
              static_cast<unsigned long long>(stats.prefetch_batches));
  std::printf("    \"waited_seconds\": %.6f,\n", stats.waited_seconds);
  std::printf("    \"elapsed_seconds\": %.6f,\n", stats.elapsed_seconds);
  std::printf("    \"async_window\": %d,\n", stats.async_window);
  std::printf("    \"backend_shards\": %d,\n", stats.backend_shards);
  std::printf("    \"shard_fetches\": [");
  for (size_t i = 0; i < stats.shard_fetches.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(stats.shard_fetches[i]));
  }
  std::printf("],\n");
  std::printf("    \"shard_stall_seconds\": [");
  for (size_t i = 0; i < stats.shard_stall_seconds.size(); ++i) {
    std::printf("%s%.6f", i == 0 ? "" : ", ", stats.shard_stall_seconds[i]);
  }
  std::printf("],\n");
  std::printf("    \"remote_addr\": \"%s\",\n",
              JsonEscape(stats.remote_addr).c_str());
  std::printf("    \"remote_rpcs\": %llu,\n",
              static_cast<unsigned long long>(stats.remote_rpcs));
  std::printf("    \"remote_retries\": %llu,\n",
              static_cast<unsigned long long>(stats.remote_retries));
  std::printf("    \"remote_bytes\": %llu,\n",
              static_cast<unsigned long long>(stats.remote_bytes));
  std::printf("    \"cache_attached\": %s,\n",
              stats.cache_attached ? "true" : "false");
  std::printf("    \"cache_hits\": %llu,\n",
              static_cast<unsigned long long>(stats.cache_hits));
  std::printf("    \"cache_misses\": %llu,\n",
              static_cast<unsigned long long>(stats.cache_misses));
  std::printf("    \"cache_evictions\": %llu,\n",
              static_cast<unsigned long long>(stats.cache_evictions));
  std::printf("    \"cache_entries\": %llu,\n",
              static_cast<unsigned long long>(stats.cache_entries));
  std::printf("    \"cache_file\": \"%s\",\n",
              JsonEscape(stats.cache_file).c_str());
  std::printf("    \"cache_stale_drops\": %llu,\n",
              static_cast<unsigned long long>(stats.cache_stale_drops));
  std::printf("    \"engine_walkers\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_walkers));
  std::printf("    \"engine_blocks\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_blocks));
  std::printf("    \"engine_block_switches\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_block_switches));
  std::printf("    \"engine_steps\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_steps));
  std::printf("    \"engine_steps_per_sec\": %.3f,\n",
              stats.engine_steps_per_sec);
  std::printf("    \"engine_bytes_scanned\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_bytes_scanned));
  std::printf("    \"engine_resident_peak\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_resident_peak));
  std::printf("    \"engine_residency_budget\": %llu,\n",
              static_cast<unsigned long long>(stats.engine_residency_budget));
  std::printf(
      "    \"engine_residency_peak_bytes\": %llu,\n",
      static_cast<unsigned long long>(stats.engine_residency_peak_bytes));
  std::printf(
      "    \"engine_residency_prefetches\": %llu,\n",
      static_cast<unsigned long long>(stats.engine_residency_prefetches));
  std::printf(
      "    \"engine_residency_releases\": %llu,\n",
      static_cast<unsigned long long>(stats.engine_residency_releases));
  std::printf("    \"last_burn_in\": %d,\n", stats.last_burn_in);
  std::printf("    \"average_burn_in\": %.6f,\n", stats.average_burn_in);
  std::printf("    \"burned_in\": %s,\n", stats.burned_in ? "true" : "false");
  std::printf("    \"candidates_tried\": %llu,\n",
              static_cast<unsigned long long>(stats.candidates_tried));
  std::printf("    \"samples_accepted\": %llu,\n",
              static_cast<unsigned long long>(stats.samples_accepted));
  std::printf("    \"acceptance_rate\": %.6f,\n", stats.acceptance_rate);
  std::printf("    \"forward_steps\": %llu,\n",
              static_cast<unsigned long long>(stats.forward_steps));
  std::printf("    \"backward_walks\": %llu,\n",
              static_cast<unsigned long long>(stats.backward_walks));
  std::printf("    \"walks_run\": %llu,\n",
              static_cast<unsigned long long>(stats.walks_run));
  std::printf("    \"samples_per_walk\": %.6f\n", stats.samples_per_walk);
  std::printf("  }\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  auto graph_result = LoadInputGraph(args);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph graph = std::move(graph_result).value();
  std::fprintf(stderr, "graph: %s\n", graph.DebugString().c_str());

  auto config_result = SamplerConfig::Parse(args.spec);
  if (!config_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 config_result.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  SamplerConfig config = std::move(config_result).value();

  // WALK-ESTIMATE family: fill in the diameter bound when the spec does not
  // pin one, from --diameter-bound or a double-sweep estimate.
  if (config.sampler.rfind("we", 0) == 0 && !config.params.contains("diameter")) {
    int diameter_bound = args.diameter_bound;
    if (diameter_bound == 0) {
      Rng rng(args.seed + 1);
      diameter_bound = static_cast<int>(
          EstimateDiameterDoubleSweep(graph, rng).value_or(10));
      std::fprintf(stderr, "diameter bound (double sweep): %d\n",
                   diameter_bound);
    }
    config.SetInt("diameter", diameter_bound);
  }

  // engine=block in the spec routes the whole run through the block
  // scheduler instead of a single sampling session: --samples is spread
  // over the spec's walker count (samples_per_walker = ceil(samples /
  // walkers)), and the engine/walkers/block keys are consumed by
  // RunWalkEngine itself.
  if (config.params.contains("engine")) {
    uint64_t walkers = EngineOptions{}.walkers;
    if (const auto it = config.params.find("walkers");
        it != config.params.end()) {
      if (!ParseUint64(it->second, &walkers) || walkers < 1) {
        std::fprintf(stderr, "error: bad walkers '%s'\n",
                     it->second.c_str());
        return 2;
      }
    }
    EngineOptions engine_opts;
    engine_opts.samples_per_walker =
        std::max<uint64_t>(1, (args.samples + walkers - 1) / walkers);
    engine_opts.session.seed = args.seed + 2;
    engine_opts.session.cache_file = args.cache_file;
    const auto run = RunWalkEngine(&graph, config, engine_opts);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      PrintUsage();
      return 2;
    }
    if (args.estimate_degree) {
      std::fprintf(stderr,
                   "note: --estimate-degree needs a session's bias map; "
                   "ignored under engine=block\n");
    }
    if (args.json) {
      PrintJson(run->stats, run->samples);
    } else {
      if (!args.quiet) {
        for (const NodeId v : run->samples) std::printf("%u\n", v);
      }
      std::fprintf(
          stderr,
          "engine: %llu walkers over %llu blocks  %llu steps "
          "(%.0f steps/sec, %llu block switches)\n"
          "drawn: %llu samples  query cost: %llu unique nodes "
          "(%llu API calls)\n",
          static_cast<unsigned long long>(run->stats.engine_walkers),
          static_cast<unsigned long long>(run->stats.engine_blocks),
          static_cast<unsigned long long>(run->stats.engine_steps),
          run->stats.engine_steps_per_sec,
          static_cast<unsigned long long>(run->stats.engine_block_switches),
          static_cast<unsigned long long>(run->stats.samples_drawn),
          static_cast<unsigned long long>(run->stats.query_cost),
          static_cast<unsigned long long>(run->stats.total_queries));
    }
    return 0;
  }

  SessionOptions session_opts;
  session_opts.seed = args.seed + 2;
  session_opts.cache_file = args.cache_file;  // "" = no persistent cache
  auto session_result = SamplingSession::Open(&graph, config, session_opts);
  if (!session_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 session_result.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  SamplingSession& session = **session_result;
  std::fprintf(stderr, "sampler: %s (start node %u)\n",
               session.config().ToSpec().c_str(), session.start());

  std::vector<NodeId> samples;
  samples.reserve(args.samples);
  while (samples.size() < args.samples) {
    const auto s = session.Draw();
    if (!s.ok()) {
      std::fprintf(stderr, "draw failed: %s\n", s.status().ToString().c_str());
      break;
    }
    samples.push_back(s.value());
    if (!args.quiet && !args.json) std::printf("%u\n", s.value());
  }

  // Persist the query cache before reading Stats() so the reported state is
  // what the next run will load; surface failures loudly (the destructor
  // would only log them).
  const Status persisted = session.PersistCache();
  if (!persisted.ok()) {
    std::fprintf(stderr, "error: %s\n", persisted.ToString().c_str());
    return 1;
  }

  const SessionStats stats = session.Stats();
  if (args.json) {
    PrintJson(stats, samples);
    return 0;
  }
  std::fprintf(stderr,
               "drawn: %llu samples  query cost: %llu unique nodes "
               "(%llu API calls)\n",
               static_cast<unsigned long long>(stats.samples_drawn),
               static_cast<unsigned long long>(stats.query_cost),
               static_cast<unsigned long long>(stats.total_queries));
  if (stats.backend_shards > 1) {
    std::fprintf(stderr, "origin shards: %d  fetches by shard:",
                 stats.backend_shards);
    for (uint64_t f : stats.shard_fetches) {
      std::fprintf(stderr, " %llu", static_cast<unsigned long long>(f));
    }
    std::fprintf(stderr, "\n");
  }
  if (!stats.remote_addr.empty()) {
    std::fprintf(
        stderr, "remote: %s  rpcs: %llu  retries: %llu  wire bytes: %llu\n",
        stats.remote_addr.c_str(),
        static_cast<unsigned long long>(stats.remote_rpcs),
        static_cast<unsigned long long>(stats.remote_retries),
        static_cast<unsigned long long>(stats.remote_bytes));
  }
  if (stats.cache_attached) {
    std::fprintf(stderr,
                 "query cache: %llu entries  hits %llu  misses %llu  "
                 "evictions %llu%s%s\n",
                 static_cast<unsigned long long>(stats.cache_entries),
                 static_cast<unsigned long long>(stats.cache_hits),
                 static_cast<unsigned long long>(stats.cache_misses),
                 static_cast<unsigned long long>(stats.cache_evictions),
                 stats.cache_file.empty() ? "" : "  file ",
                 stats.cache_file.c_str());
  }
  if (stats.candidates_tried > 0) {
    std::fprintf(stderr, "acceptance rate: %.3f (%llu candidates)\n",
                 stats.acceptance_rate,
                 static_cast<unsigned long long>(stats.candidates_tried));
  }
  if (stats.average_burn_in > 0) {
    std::fprintf(stderr, "average burn-in: %.1f steps\n",
                 stats.average_burn_in);
  }
  if (args.estimate_degree && !samples.empty()) {
    const double est = EstimateAverage(
        samples, session.bias(),
        [&](NodeId u) { return static_cast<double>(graph.Degree(u)); },
        [&](NodeId u) { return static_cast<double>(graph.Degree(u)); });
    std::fprintf(stderr, "avg degree estimate: %.4f (true %.4f)\n", est,
                 graph.average_degree());
  }
  return 0;
}
