// wnw_serve: the standalone neighbor-query daemon — serves a graph snapshot
// over the wire protocol (net/wire.h) on an epoll reactor pool
// (net/server.h), so samplers on other processes or hosts hit the paper's
// actual setting: every local-neighborhood query is a remote API call.
//
// Usage:
//   wnw_serve --snapshot graph.snap [--port P] [--bind ADDR] [--threads N]
//             [--shards N [--partition hash|range|degree]]
//             [--restriction none|random|fixed|truncated --max-neighbors K]
//             [--access-seed S] [--no-verify] [--drain-timeout SEC]
//             [--port-file PATH]
//
// Examples:
//   wnw_snapshot --dataset small --output small.snap --shards 4
//   wnw_serve --snapshot small.snap --shards 4 --port 7411 &
//   wnw_sample --dataset small --samples 20 \
//       --spec "we:mhrw?backend=remote&addr=127.0.0.1:7411"
//
// The server owns the whole origin scenario: the snapshot topology, the
// shard layout (per-shard file sections are served straight from the
// mapping), and the §6.3.1 access restriction with its counter-mode
// randomness — which is why a RemoteBackend client draws byte-identical
// samples to an in-process origin built from the same options. --port 0
// binds an ephemeral port; --port-file writes the bound port for scripts
// that need to discover it (the CI loopback smoke test does).
//
// SIGTERM / SIGINT drain gracefully: stop accepting, flush every response
// already owed, close, then exit 0 — bounded by --drain-timeout.
#include <csignal>
#include <cstdio>
#include <string>

#include "access/decorators.h"
#include "access/snapshot_backend.h"
#include "graph/sharded_graph.h"
#include "net/server.h"
#include "util/string_util.h"

namespace {

using namespace wnw;

struct Args {
  std::string snapshot;
  std::string bind = "127.0.0.1";
  std::string partition = "hash";
  std::string restriction = "none";
  std::string port_file;
  uint64_t port = 0;
  uint64_t threads = 0;
  uint64_t shards = 0;
  uint64_t max_neighbors = 0;
  uint64_t access_seed = 0x5eedu;
  double drain_timeout = 5.0;
  bool verify = true;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wnw_serve --snapshot SNAP [--port P] [--bind ADDR]\n"
      "                 [--threads N] [--shards N]\n"
      "                 [--partition hash|range|degree]\n"
      "                 [--restriction none|random|fixed|truncated]\n"
      "                 [--max-neighbors K] [--access-seed S]\n"
      "                 [--no-verify] [--drain-timeout SEC]\n"
      "                 [--port-file PATH]\n"
      "protocol reference: docs/SERVICE.md\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_str = [&](std::string* out) {
      const char* v = next();
      if (v == nullptr) return false;
      *out = v;
      return true;
    };
    auto next_uint = [&](uint64_t* out) {
      const char* v = next();
      return v != nullptr && ParseUint64(v, out);
    };
    if (flag == "--snapshot") {
      if (!next_str(&args->snapshot)) return false;
    } else if (flag == "--bind") {
      if (!next_str(&args->bind)) return false;
    } else if (flag == "--partition") {
      if (!next_str(&args->partition)) return false;
    } else if (flag == "--restriction") {
      if (!next_str(&args->restriction)) return false;
    } else if (flag == "--port-file") {
      if (!next_str(&args->port_file)) return false;
    } else if (flag == "--port") {
      if (!next_uint(&args->port) || args->port > 65535) return false;
    } else if (flag == "--threads") {
      if (!next_uint(&args->threads) || args->threads > 64) return false;
    } else if (flag == "--shards") {
      if (!next_uint(&args->shards)) return false;
    } else if (flag == "--max-neighbors") {
      if (!next_uint(&args->max_neighbors)) return false;
    } else if (flag == "--access-seed") {
      if (!next_uint(&args->access_seed)) return false;
    } else if (flag == "--drain-timeout") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &args->drain_timeout) ||
          args->drain_timeout < 0.0) {
        return false;
      }
    } else if (flag == "--no-verify") {
      args->verify = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(flag).c_str());
      return false;
    }
  }
  return !args->snapshot.empty();
}

Result<AccessOptions> BuildAccessOptions(const Args& args) {
  AccessOptions access;
  access.seed = args.access_seed;
  access.max_neighbors = static_cast<uint32_t>(args.max_neighbors);
  if (args.restriction == "none") {
    access.restriction = NeighborRestriction::kNone;
  } else if (args.restriction == "random") {
    access.restriction = NeighborRestriction::kRandomSubset;
  } else if (args.restriction == "fixed") {
    access.restriction = NeighborRestriction::kFixedSubset;
  } else if (args.restriction == "truncated") {
    access.restriction = NeighborRestriction::kTruncated;
  } else {
    return Status::InvalidArgument(
        "unknown restriction '" + args.restriction +
        "' (expected none | random | fixed | truncated)");
  }
  if (access.restriction != NeighborRestriction::kNone &&
      access.max_neighbors == 0) {
    return Status::InvalidArgument(
        "--restriction " + args.restriction + " requires --max-neighbors");
  }
  return access;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  // Block the shutdown signals before any thread starts so every reactor
  // inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto access = BuildAccessOptions(args);
  if (!access.ok()) {
    std::fprintf(stderr, "error: %s\n", access.status().ToString().c_str());
    return 2;
  }

  BackendStackOptions stack;
  stack.access = *access;
  stack.snapshot = args.snapshot;
  stack.snapshot_verify = args.verify;
  if (args.shards > 0) {
    if (args.shards > static_cast<uint64_t>(ShardedGraph::kMaxShards)) {
      std::fprintf(stderr, "error: --shards must be in [1, %d]\n",
                   ShardedGraph::kMaxShards);
      return 2;
    }
    stack.shards = static_cast<int>(args.shards);
    auto partition = ParseShardPartition(args.partition);
    if (!partition.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   partition.status().ToString().c_str());
      return 2;
    }
    stack.partition = *partition;
  }
  auto backend = BuildSnapshotBackendStack(stack);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }

  net::ServerOptions options;
  options.bind_addr = args.bind;
  options.port = static_cast<int>(args.port);
  options.threads = static_cast<int>(args.threads);
  options.drain_timeout_seconds = args.drain_timeout;
  auto server = net::WnwServer::Start(*backend, options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "wnw_serve: %s (%llu nodes) on %s:%d — %d reactor threads\n",
               std::string((*backend)->name()).c_str(),
               static_cast<unsigned long long>((*backend)->num_nodes()),
               args.bind.c_str(), (*server)->port(), (*server)->threads());
  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   args.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", (*server)->port());
    std::fclose(f);
  }

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::fprintf(stderr, "wnw_serve: signal %d, draining...\n", signal_number);
  (*server)->Shutdown();

  const net::WnwServer::Counters counters = (*server)->counters();
  std::fprintf(stderr,
               "wnw_serve: drained — %llu requests over %llu connections "
               "(%llu protocol errors)\n",
               static_cast<unsigned long long>(counters.requests_served),
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.protocol_errors));
  return 0;
}
